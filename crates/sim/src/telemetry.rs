//! Observability: flight recorder, time-series sampler and JSONL export.
//!
//! Three pieces, all strictly *observation-pure* — attaching or
//! detaching any of them may not change one observable bit of the
//! simulation (enforced by the metrics-equality and byte-determinism
//! tests in `crates/bench/tests/`):
//!
//! * a bounded **[`FlightRecorder`]**: per-node ring buffers of the
//!   last N [`TraceEvent`]s, stamped with a global sequence number, fed
//!   from the kernel's single emission point. When the every-mutation
//!   invariant auditor captures its first breach, the recorder's merged
//!   dump is attached to the [`crate::audit::ForensicReport`], so
//!   failures always come with context;
//! * a **time-series sampler** driven by the kernel's
//!   [`crate::event::Event::TelemetrySample`] event (sim-time only —
//!   wall clocks are banned in this crate by `cargo xtask check`):
//!   each [`SeriesSample`] snapshots rolling delivery ratio,
//!   per-[`ControlKind`] transmission rates, per-protocol route-table
//!   occupancy ([`crate::protocol::RoutingProtocol::telemetry_snapshot`]),
//!   drop-reason counters, FEL depth and per-event-kind kernel counts;
//! * a hand-rolled **JSONL** layer (no serde — the build is offline):
//!   schema-versioned trace and series files with a fixed field order,
//!   byte-identical across reruns of the same `(scenario, seed)`.
//!   [`JsonlTrace`] is a [`TraceSink`]; [`series_to_jsonl`] renders the
//!   sampler output. `crates/bench`'s `tracegrep` binary consumes both.

use crate::event::Event;
use crate::packet::{ControlKind, NodeId};
use crate::protocol::DropReason;
use crate::time::{SimDuration, SimTime};
use crate::trace::{
    FaultKind, InvalidateCause, InvariantSnapshot, RouteVerdict, TraceEvent, TraceSink,
};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Schema identifier of the per-event trace file.
pub const TRACE_SCHEMA: &str = "manet-trace";
/// Schema identifier of the time-series file.
pub const SERIES_SCHEMA: &str = "manet-series";
/// Version stamped into both file headers; bump on any field change.
pub const SCHEMA_VERSION: u32 = 1;

/// Telemetry knobs, carried by [`crate::config::SimConfig::telemetry`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Per-node flight-recorder ring capacity (events). `0` disables
    /// the recorder.
    pub flight_recorder_depth: usize,
    /// Sampling interval of the time-series sampler. `None` disables
    /// sampling.
    pub sample_interval: Option<SimDuration>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            flight_recorder_depth: 64,
            sample_interval: Some(SimDuration::from_secs(1)),
        }
    }
}

/// One entry of a flight-recorder ring: a trace event with its global
/// emission sequence number (total order across all nodes).
#[derive(Clone, Debug, PartialEq)]
pub struct FlightEntry {
    /// Global emission sequence number (0-based, gap-free at emission;
    /// rings evict oldest-first, so retained entries show gaps).
    pub seq: u64,
    /// Simulated time of the event.
    pub at: SimTime,
    /// The event.
    pub event: TraceEvent,
}

/// Bounded per-node rings of recent trace events.
///
/// Sized `nodes × depth`; recording is O(1). The merged [`dump`]
/// interleaves all rings back into global emission order by sequence
/// number.
///
/// [`dump`]: FlightRecorder::dump
#[derive(Debug)]
pub struct FlightRecorder {
    depth: usize,
    next_seq: u64,
    rings: Vec<VecDeque<FlightEntry>>,
}

impl FlightRecorder {
    /// A recorder with one `depth`-deep ring per node.
    pub fn new(n_nodes: usize, depth: usize) -> Self {
        FlightRecorder { depth, next_seq: 0, rings: vec![VecDeque::new(); n_nodes] }
    }

    /// Records one event into the ring of the node it happened at.
    pub fn record(&mut self, at: SimTime, event: &TraceEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.depth == 0 {
            return;
        }
        let idx = event.node().index();
        let Some(ring) = self.rings.get_mut(idx) else { return };
        if ring.len() == self.depth {
            ring.pop_front();
        }
        ring.push_back(FlightEntry { seq, at, event: event.clone() });
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// The retained tail of one node's ring, oldest first.
    pub fn node_tail(&self, node: NodeId) -> Vec<FlightEntry> {
        self.rings.get(node.index()).map(|r| r.iter().cloned().collect()).unwrap_or_default()
    }

    /// All retained entries across all nodes, merged back into global
    /// emission order (ascending sequence number).
    pub fn dump(&self) -> Vec<FlightEntry> {
        let mut all: Vec<FlightEntry> = self.rings.iter().flat_map(|r| r.iter().cloned()).collect();
        all.sort_by_key(|e| e.seq);
        all
    }
}

/// Cumulative-counter baseline the sampler diffs against to turn
/// monotone totals into per-interval rates.
#[derive(Clone, Copy, Debug, Default)]
pub struct SampleBaseline {
    /// Packets delivered as of the previous sample.
    pub delivered: u64,
    /// Packets originated as of the previous sample.
    pub originated: u64,
    /// Hop-wise control transmissions per kind ([`ControlKind::ALL`]
    /// order) as of the previous sample.
    pub control_tx: [u64; ControlKind::ALL.len()],
}

/// One time-series sample, taken at a `TelemetrySample` kernel event.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesSample {
    /// Simulated time of the sample.
    pub at: SimTime,
    /// Cumulative packets delivered.
    pub delivered: u64,
    /// Cumulative packets originated.
    pub originated: u64,
    /// Packets delivered during the last interval.
    pub delivered_w: u64,
    /// Packets originated during the last interval.
    pub originated_w: u64,
    /// Control transmissions during the last interval, per kind in
    /// [`ControlKind::ALL`] order.
    pub control_tx_w: [u64; ControlKind::ALL.len()],
    /// Cumulative routing-layer drops per reason in
    /// [`DropReason::ALL`] order.
    pub drops: [u64; DropReason::ALL.len()],
    /// Route-table entries summed over all nodes.
    pub route_entries: u64,
    /// Currently usable routes summed over all nodes.
    pub route_valid: u64,
    /// Future-event-list depth at sample time.
    pub fel_depth: u64,
    /// Cumulative kernel events dispatched, per kind in
    /// [`Event::KIND_NAMES`] order.
    pub events_by_kind: [u64; Event::KIND_COUNT],
}

impl SeriesSample {
    /// Cumulative delivery ratio (0 when nothing originated yet).
    pub fn delivery_ratio(&self) -> f64 {
        if self.originated == 0 {
            0.0
        } else {
            self.delivered as f64 / self.originated as f64
        }
    }

    /// Delivery ratio of the last interval alone.
    pub fn delivery_ratio_w(&self) -> f64 {
        if self.originated_w == 0 {
            0.0
        } else {
            self.delivered_w as f64 / self.originated_w as f64
        }
    }
}

// ----- JSONL encoding ---------------------------------------------------

/// Appends `s` JSON-escaped (quotes, backslashes, control characters).
fn esc_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// JSON-escapes a string (without surrounding quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    esc_into(&mut out, s);
    out
}

fn push_opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
}

fn push_snapshot(out: &mut String, s: &InvariantSnapshot) {
    out.push_str("{\"sn\":");
    push_opt_u64(out, s.sn);
    let _ = write!(out, ",\"d\":{},\"fd\":{}}}", s.d, s.fd);
}

fn push_opt_snapshot(out: &mut String, s: &Option<InvariantSnapshot>) {
    match s {
        Some(s) => push_snapshot(out, s),
        None => out.push_str("null"),
    }
}

/// Stable wire name of a control kind.
pub fn control_kind_name(k: ControlKind) -> &'static str {
    match k {
        ControlKind::Rreq => "rreq",
        ControlKind::Rrep => "rrep",
        ControlKind::Rerr => "rerr",
        ControlKind::Hello => "hello",
        ControlKind::Tc => "tc",
        ControlKind::Other => "other",
    }
}

/// Stable wire name of a drop reason.
pub fn drop_reason_name(r: DropReason) -> &'static str {
    match r {
        DropReason::NoRoute => "no_route",
        DropReason::TtlExpired => "ttl_expired",
        DropReason::BufferOverflow => "buffer_overflow",
        DropReason::BrokenSourceRoute => "broken_source_route",
        DropReason::Malformed => "malformed",
        DropReason::Other => "other",
    }
}

fn verdict_name(v: RouteVerdict) -> &'static str {
    match v {
        RouteVerdict::Installed => "installed",
        RouteVerdict::Refreshed => "refreshed",
        RouteVerdict::NotBetter => "not_better",
        RouteVerdict::Infeasible => "infeasible",
    }
}

fn cause_name(c: InvalidateCause) -> &'static str {
    match c {
        InvalidateCause::LinkFailure => "link_failure",
        InvalidateCause::RouteError => "route_error",
        InvalidateCause::RequestAsError => "request_as_error",
        InvalidateCause::SeqnoAdopted => "seqno_adopted",
    }
}

fn fault_kind_name(k: FaultKind) -> &'static str {
    match k {
        FaultKind::Crash => "crash",
        FaultKind::LinkDown => "link_down",
        FaultKind::LinkUp => "link_up",
        FaultKind::Partition => "partition",
        FaultKind::Heal => "heal",
        FaultKind::Impair => "impair",
        FaultKind::Replay => "replay",
    }
}

/// The trace file's header line (first line of the file).
pub fn trace_header(seed: u64, nodes: usize) -> String {
    format!(
        "{{\"schema\":\"{TRACE_SCHEMA}\",\"version\":{SCHEMA_VERSION},\"seed\":{seed},\"nodes\":{nodes}}}"
    )
}

/// Renders one trace event as a single JSONL line (no trailing
/// newline). Field order is fixed per event type: `i` (record index),
/// `t_ns`, `type`, then the variant's own fields in declaration order.
pub fn event_to_jsonl(i: u64, t: SimTime, e: &TraceEvent) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(out, "{{\"i\":{i},\"t_ns\":{},\"type\":\"", t.as_nanos());
    match e {
        TraceEvent::TxStart { node, uid, dst } => {
            let _ = write!(out, "tx_start\",\"node\":{},\"uid\":", node.0);
            push_opt_u64(&mut out, *uid);
            out.push_str(",\"dst\":");
            push_opt_u64(&mut out, dst.map(|d| u64::from(d.0)));
        }
        TraceEvent::RxOk { node, uid } => {
            let _ = write!(out, "rx_ok\",\"node\":{},\"uid\":", node.0);
            push_opt_u64(&mut out, *uid);
        }
        TraceEvent::RxCollision { node } => {
            let _ = write!(out, "rx_collision\",\"node\":{}", node.0);
        }
        TraceEvent::MacGiveUp { node, dst, uid } => {
            let _ =
                write!(out, "mac_give_up\",\"node\":{},\"dst\":{},\"uid\":{}", node.0, dst.0, uid);
        }
        TraceEvent::Delivered { node, flow, seq } => {
            let _ = write!(out, "delivered\",\"node\":{},\"flow\":{flow},\"seq\":{seq}", node.0);
        }
        TraceEvent::DataSend { node, next, dst, flow, seq } => {
            let _ = write!(
                out,
                "data_send\",\"node\":{},\"next\":{},\"dst\":{},\"flow\":{flow},\"seq\":{seq}",
                node.0, next.0, dst.0
            );
        }
        TraceEvent::DataDrop { node, flow, seq, reason } => {
            let _ = write!(
                out,
                "data_drop\",\"node\":{},\"flow\":{flow},\"seq\":{seq},\"reason\":\"{}\"",
                node.0,
                drop_reason_name(*reason)
            );
        }
        TraceEvent::ControlDrop { node, kind } => {
            let _ = write!(
                out,
                "control_drop\",\"node\":{},\"kind\":\"{}\"",
                node.0,
                control_kind_name(*kind)
            );
        }
        TraceEvent::RouteInstall { node, dest, next, before, after } => {
            let _ = write!(
                out,
                "route_install\",\"node\":{},\"dest\":{},\"next\":{},\"before\":",
                node.0, dest.0, next.0
            );
            push_opt_snapshot(&mut out, before);
            out.push_str(",\"after\":");
            push_snapshot(&mut out, after);
        }
        TraceEvent::RouteInvalidate { node, dest, seqno, cause } => {
            let _ =
                write!(out, "route_invalidate\",\"node\":{},\"dest\":{},\"sn\":", node.0, dest.0);
            push_opt_u64(&mut out, *seqno);
            let _ = write!(out, ",\"cause\":\"{}\"", cause_name(*cause));
        }
        TraceEvent::SeqnoReset { node, old, new } => {
            let _ = write!(out, "seqno_reset\",\"node\":{},\"old\":{old},\"new\":{new}", node.0);
        }
        TraceEvent::AdvertConsidered {
            node,
            dest,
            from,
            adv_sn,
            adv_d,
            before,
            after,
            verdict,
        } => {
            let _ = write!(
                out,
                "advert_considered\",\"node\":{},\"dest\":{},\"from\":{},\"adv_sn\":{adv_sn},\"adv_d\":{adv_d},\"before\":",
                node.0, dest.0, from.0
            );
            push_opt_snapshot(&mut out, before);
            out.push_str(",\"after\":");
            push_opt_snapshot(&mut out, after);
            let _ = write!(out, ",\"verdict\":\"{}\"", verdict_name(*verdict));
        }
        TraceEvent::SolicitVerdict { node, dest, t_bit, allowed } => {
            let _ = write!(
                out,
                "solicit_verdict\",\"node\":{},\"dest\":{},\"t_bit\":{t_bit},\"allowed\":{allowed}",
                node.0, dest.0
            );
        }
        TraceEvent::RreqStart { node, dest, rreqid, ttl } => {
            let _ = write!(
                out,
                "rreq_start\",\"node\":{},\"dest\":{},\"rreqid\":{rreqid},\"ttl\":{ttl}",
                node.0, dest.0
            );
        }
        TraceEvent::RreqRelay { node, dest, origin } => {
            let _ = write!(
                out,
                "rreq_relay\",\"node\":{},\"dest\":{},\"origin\":{}",
                node.0, dest.0, origin.0
            );
        }
        TraceEvent::RrepSend { node, dest, to, dist } => {
            let _ = write!(
                out,
                "rrep_send\",\"node\":{},\"dest\":{},\"to\":{},\"dist\":{dist}",
                node.0, dest.0, to.0
            );
        }
        TraceEvent::RerrSend { node, dests } => {
            let _ = write!(out, "rerr_send\",\"node\":{},\"dests\":[", node.0);
            for (k, d) in dests.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", d.0);
            }
            out.push(']');
        }
        TraceEvent::FaultInjected { node, kind } => {
            let _ = write!(
                out,
                "fault_injected\",\"node\":{},\"kind\":\"{}\"",
                node.0,
                fault_kind_name(*kind)
            );
        }
        TraceEvent::NodeRestarted { node } => {
            let _ = write!(out, "node_restarted\",\"node\":{}", node.0);
        }
    }
    out.push('}');
    out
}

/// The series file's header line.
pub fn series_header(seed: u64, interval: SimDuration) -> String {
    format!(
        "{{\"schema\":\"{SERIES_SCHEMA}\",\"version\":{SCHEMA_VERSION},\"seed\":{seed},\"interval_ns\":{}}}",
        interval.as_nanos()
    )
}

/// Renders one sample as a single JSONL line (no trailing newline),
/// with a fixed field order.
pub fn sample_to_jsonl(i: u64, s: &SeriesSample) -> String {
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"i\":{i},\"t_ns\":{},\"delivery_ratio\":{},\"delivery_ratio_w\":{},\"delivered\":{},\"originated\":{},\"delivered_w\":{},\"originated_w\":{}",
        s.at.as_nanos(),
        s.delivery_ratio(),
        s.delivery_ratio_w(),
        s.delivered,
        s.originated,
        s.delivered_w,
        s.originated_w
    );
    for (k, kind) in ControlKind::ALL.iter().enumerate() {
        let _ = write!(out, ",\"ctl_{}_w\":{}", control_kind_name(*kind), s.control_tx_w[k]);
    }
    for (k, reason) in DropReason::ALL.iter().enumerate() {
        let _ = write!(out, ",\"drop_{}\":{}", drop_reason_name(*reason), s.drops[k]);
    }
    let _ = write!(
        out,
        ",\"route_entries\":{},\"route_valid\":{},\"fel_depth\":{}",
        s.route_entries, s.route_valid, s.fel_depth
    );
    for (k, name) in Event::KIND_NAMES.iter().enumerate() {
        let _ = write!(out, ",\"ev_{name}\":{}", s.events_by_kind[k]);
    }
    out.push('}');
    out
}

/// Renders a whole sampler series as a JSONL document (header line plus
/// one line per sample, each newline-terminated).
pub fn series_to_jsonl(seed: u64, interval: SimDuration, samples: &[SeriesSample]) -> String {
    let mut out = series_header(seed, interval);
    out.push('\n');
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&sample_to_jsonl(i as u64, s));
        out.push('\n');
    }
    out
}

/// A [`TraceSink`] that renders every event straight into an in-memory
/// JSONL document (header line first). Share it with the world via
/// [`JsonlTrace::shared`], then write [`JsonlTrace::contents`] to disk.
#[derive(Debug)]
pub struct JsonlTrace {
    doc: String,
    next: u64,
}

impl JsonlTrace {
    /// An empty document with its header line already written.
    pub fn new(seed: u64, nodes: usize) -> Self {
        let mut doc = trace_header(seed, nodes);
        doc.push('\n');
        JsonlTrace { doc, next: 0 }
    }

    /// A shareable handle usable both as the world's sink and for
    /// retrieving the document afterwards.
    pub fn shared(seed: u64, nodes: usize) -> Arc<Mutex<JsonlTrace>> {
        Arc::new(Mutex::new(JsonlTrace::new(seed, nodes)))
    }

    /// The JSONL document rendered so far.
    pub fn contents(&self) -> &str {
        &self.doc
    }

    /// Number of event lines written (excluding the header).
    pub fn lines(&self) -> u64 {
        self.next
    }
}

impl TraceSink for JsonlTrace {
    fn record(&mut self, t: SimTime, event: TraceEvent) {
        let i = self.next;
        self.next += 1;
        self.doc.push_str(&event_to_jsonl(i, t, &event));
        self.doc.push('\n');
    }
}

impl TraceSink for Arc<Mutex<JsonlTrace>> {
    fn record(&mut self, t: SimTime, event: TraceEvent) {
        // A poisoned lock means a panic elsewhere already ended the
        // run; silently dropping the event beats a panic-in-panic.
        if let Ok(mut w) = self.lock() {
            w.record(t, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_variant() -> Vec<TraceEvent> {
        let snap = InvariantSnapshot { sn: Some(7), d: 2, fd: 2 };
        vec![
            TraceEvent::TxStart { node: NodeId(1), uid: Some(9), dst: None },
            TraceEvent::RxOk { node: NodeId(2), uid: None },
            TraceEvent::RxCollision { node: NodeId(3) },
            TraceEvent::MacGiveUp { node: NodeId(1), dst: NodeId(2), uid: 4 },
            TraceEvent::Delivered { node: NodeId(2), flow: 5, seq: 6 },
            TraceEvent::DataSend {
                node: NodeId(0),
                next: NodeId(1),
                dst: NodeId(2),
                flow: 5,
                seq: 6,
            },
            TraceEvent::DataDrop { node: NodeId(1), flow: 5, seq: 7, reason: DropReason::NoRoute },
            TraceEvent::ControlDrop { node: NodeId(1), kind: ControlKind::Rreq },
            TraceEvent::RouteInstall {
                node: NodeId(0),
                dest: NodeId(2),
                next: NodeId(1),
                before: None,
                after: snap,
            },
            TraceEvent::RouteInvalidate {
                node: NodeId(0),
                dest: NodeId(2),
                seqno: Some(7),
                cause: InvalidateCause::LinkFailure,
            },
            TraceEvent::SeqnoReset { node: NodeId(0), old: 1, new: 2 },
            TraceEvent::AdvertConsidered {
                node: NodeId(0),
                dest: NodeId(2),
                from: NodeId(1),
                adv_sn: 7,
                adv_d: 3,
                before: Some(snap),
                after: Some(snap),
                verdict: RouteVerdict::NotBetter,
            },
            TraceEvent::SolicitVerdict {
                node: NodeId(1),
                dest: NodeId(2),
                t_bit: true,
                allowed: false,
            },
            TraceEvent::RreqStart { node: NodeId(0), dest: NodeId(2), rreqid: 1, ttl: 3 },
            TraceEvent::RreqRelay { node: NodeId(1), dest: NodeId(2), origin: NodeId(0) },
            TraceEvent::RrepSend { node: NodeId(2), dest: NodeId(2), to: NodeId(1), dist: 0 },
            TraceEvent::RerrSend { node: NodeId(1), dests: vec![NodeId(2), NodeId(3)] },
            TraceEvent::FaultInjected { node: NodeId(1), kind: FaultKind::Crash },
            TraceEvent::NodeRestarted { node: NodeId(1) },
        ]
    }

    #[test]
    fn every_trace_variant_encodes_to_one_wellformed_line() {
        for (i, e) in every_variant().iter().enumerate() {
            let line = event_to_jsonl(i as u64, SimTime::from_millis(i as u64), e);
            assert!(line.starts_with(&format!("{{\"i\":{i},")), "{line}");
            assert!(line.ends_with('}'), "{line}");
            assert!(!line.contains('\n'), "one line per event: {line}");
            assert!(line.contains("\"type\":\""), "{line}");
            // Balanced braces and brackets (no string in our encoding
            // contains either, so raw counting is sound).
            let open = line.matches('{').count();
            let close = line.matches('}').count();
            assert_eq!(open, close, "{line}");
            assert_eq!(line.matches('[').count(), line.matches(']').count(), "{line}");
        }
    }

    #[test]
    fn escape_covers_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn trace_and_series_headers_are_schema_versioned() {
        let h = trace_header(42, 50);
        assert_eq!(h, "{\"schema\":\"manet-trace\",\"version\":1,\"seed\":42,\"nodes\":50}");
        let s = series_header(42, SimDuration::from_secs(1));
        assert_eq!(
            s,
            "{\"schema\":\"manet-series\",\"version\":1,\"seed\":42,\"interval_ns\":1000000000}"
        );
    }

    #[test]
    fn flight_recorder_rings_are_bounded_and_merge_in_seq_order() {
        let mut fr = FlightRecorder::new(2, 3);
        for k in 0..5u64 {
            fr.record(SimTime::from_millis(k), &TraceEvent::RxCollision { node: NodeId(0) });
            fr.record(
                SimTime::from_millis(k),
                &TraceEvent::Delivered { node: NodeId(1), flow: 0, seq: k as u32 },
            );
        }
        assert_eq!(fr.recorded(), 10);
        assert_eq!(fr.node_tail(NodeId(0)).len(), 3, "ring bounded at depth");
        assert_eq!(fr.node_tail(NodeId(1)).len(), 3);
        let dump = fr.dump();
        assert_eq!(dump.len(), 6);
        assert!(dump.windows(2).all(|w| w[0].seq < w[1].seq), "global order restored");
        // The oldest retained entries are the last 3 rounds.
        assert_eq!(dump[0].seq, 4);
    }

    #[test]
    fn zero_depth_recorder_retains_nothing_but_still_counts() {
        let mut fr = FlightRecorder::new(1, 0);
        fr.record(SimTime::ZERO, &TraceEvent::RxCollision { node: NodeId(0) });
        assert_eq!(fr.recorded(), 1);
        assert!(fr.dump().is_empty());
    }

    #[test]
    fn jsonl_sink_renders_header_then_events() {
        let shared = JsonlTrace::shared(7, 3);
        let mut sink: Box<dyn TraceSink> = Box::new(shared.clone());
        sink.record(SimTime::from_secs(1), TraceEvent::RxCollision { node: NodeId(0) });
        sink.record(
            SimTime::from_secs(2),
            TraceEvent::Delivered { node: NodeId(1), flow: 0, seq: 0 },
        );
        let doc = shared.lock().map(|t| t.contents().to_string()).unwrap_or_default();
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"schema\":\"manet-trace\""));
        assert!(lines[1].contains("\"type\":\"rx_collision\""));
        assert!(lines[2].contains("\"type\":\"delivered\""));
    }

    #[test]
    fn sample_line_has_fixed_field_order() {
        let s = SeriesSample {
            at: SimTime::from_secs(1),
            delivered: 4,
            originated: 8,
            delivered_w: 2,
            originated_w: 4,
            control_tx_w: [1, 2, 3, 4, 5, 6],
            drops: [1, 0, 0, 0, 0, 2],
            route_entries: 9,
            route_valid: 7,
            fel_depth: 33,
            events_by_kind: [0; Event::KIND_COUNT],
        };
        let line = sample_to_jsonl(0, &s);
        assert!(line.starts_with("{\"i\":0,\"t_ns\":1000000000,\"delivery_ratio\":0.5,"));
        assert!(line.contains("\"ctl_rreq_w\":1"));
        assert!(line.contains("\"drop_no_route\":1"));
        assert!(line.contains("\"drop_other\":2"));
        assert!(line.contains("\"route_entries\":9,\"route_valid\":7,\"fel_depth\":33"));
        assert!(line.contains("\"ev_mac_kick\":0"));
        let idx_ratio = line.find("delivery_ratio").unwrap();
        let idx_fel = line.find("fel_depth").unwrap();
        assert!(idx_ratio < idx_fel, "fixed field order");
    }
}
