//! Run metrics, mirroring the paper's six reported measures (§4):
//! delivery ratio, network load, RREQ load, data latency, RREP Init and
//! RREP Recv — plus supporting counters (drops, MAC stats, loop-audit
//! violations, mean destination sequence number for Fig. 7).

use crate::hash::FxBuild;
use crate::packet::ControlKind;
use crate::protocol::{DropReason, ProtoCounter};
use crate::time::SimDuration;
use std::collections::HashMap;
use std::collections::HashSet;

/// Everything measured during one simulation run.
///
/// `PartialEq` compares every field (including float sums bit-for-bit
/// via `==`), which is what the grid-vs-linear differential tests rely
/// on: two byte-identical runs compare equal.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    /// CBR packets handed to the routing layer by sources.
    pub data_originated: u64,
    /// CBR packets delivered to their destination (first copy only).
    pub data_delivered: u64,
    /// Extra copies of already-delivered packets.
    pub duplicate_deliveries: u64,
    /// Hop-wise data transmissions (first MAC attempt per hop).
    pub data_tx_hops: u64,
    /// Sum of end-to-end latencies of delivered packets, seconds.
    pub latency_sum_s: f64,
    /// Hop-wise control transmissions by kind. (These counter maps use
    /// the deterministic [`FxBuild`] hasher — they are bumped on every
    /// control hop / drop / delivery, and every consumer is
    /// order-insensitive: point lookups, commutative sums and
    /// whole-map equality.)
    pub control_tx: HashMap<ControlKind, u64, FxBuild>,
    /// Control packets initiated (first transmission only) by kind.
    pub control_init: HashMap<ControlKind, u64, FxBuild>,
    /// Routing-layer data drops by reason.
    pub drops: HashMap<DropReason, u64, FxBuild>,
    /// Protocol-reported counters.
    pub proto: HashMap<ProtoCounter, u64, FxBuild>,
    /// Frames lost to interface-queue overflow.
    pub ifq_drops: u64,
    /// Unicast frames abandoned after the MAC retry limit.
    pub mac_retry_failures: u64,
    /// Frames corrupted by collisions (receptions, not transmissions).
    pub collisions: u64,
    /// Routing-table loops observed by the auditor (0 required for LDR).
    pub loop_violations: u64,
    /// Every-mutation invariant checks performed (0 unless
    /// `SimConfig::invariant_audit` is set).
    pub invariant_checks: u64,
    /// Invariant breaches (fd regressions + loops) the every-mutation
    /// auditor found.
    pub invariant_breaches: u64,
    /// Fault-plan actions the kernel fired ([`crate::faults`]).
    pub faults_injected: u64,
    /// Crash/restart cycles completed (restart instants).
    pub node_restarts: u64,
    /// Mean of each node's own destination sequence number at run end.
    pub mean_own_seqno: f64,
    /// Simulated run length, for rate normalisation.
    pub sim_seconds: f64,
    delivered_keys: HashSet<(u32, u32), FxBuild>,
}

impl Metrics {
    /// A zeroed metrics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a delivery; returns `false` (and counts a duplicate) if
    /// this `(flow, seq)` was already delivered.
    pub fn record_delivery(&mut self, flow: u32, seq: u32, latency: SimDuration) -> bool {
        if self.delivered_keys.insert((flow, seq)) {
            self.data_delivered += 1;
            self.latency_sum_s += latency.as_secs_f64();
            true
        } else {
            self.duplicate_deliveries += 1;
            false
        }
    }

    /// Increments a control-transmission counter.
    pub fn record_control_tx(&mut self, kind: ControlKind) {
        *self.control_tx.entry(kind).or_insert(0) += 1;
    }

    /// Increments a control-initiation counter.
    pub fn record_control_init(&mut self, kind: ControlKind) {
        *self.control_init.entry(kind).or_insert(0) += 1;
    }

    /// Increments a drop counter.
    pub fn record_drop(&mut self, reason: DropReason) {
        *self.drops.entry(reason).or_insert(0) += 1;
    }

    /// Adds to a protocol counter.
    pub fn record_proto(&mut self, which: ProtoCounter, amount: u64) {
        *self.proto.entry(which).or_insert(0) += amount;
    }

    /// Fraction of originated CBR packets that were delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.data_originated == 0 {
            return 0.0;
        }
        self.data_delivered as f64 / self.data_originated as f64
    }

    /// Total hop-wise control transmissions of every kind.
    pub fn total_control_tx(&self) -> u64 {
        self.control_tx.values().sum()
    }

    /// The paper's "network load": control packets transmitted per
    /// received data packet.
    pub fn network_load(&self) -> f64 {
        safe_ratio(self.total_control_tx(), self.data_delivered)
    }

    /// The paper's "RREQ load": RREQs transmitted per received data
    /// packet.
    pub fn rreq_load(&self) -> f64 {
        safe_ratio(
            self.control_tx.get(&ControlKind::Rreq).copied().unwrap_or(0),
            self.data_delivered,
        )
    }

    /// Mean end-to-end data latency in seconds.
    pub fn mean_latency_s(&self) -> f64 {
        if self.data_delivered == 0 {
            return 0.0;
        }
        self.latency_sum_s / self.data_delivered as f64
    }

    /// The paper's "RREP Init": RREPs initiated per RREQ initiated.
    pub fn rrep_init_per_rreq(&self) -> f64 {
        safe_ratio(
            self.control_init.get(&ControlKind::Rrep).copied().unwrap_or(0),
            self.control_init.get(&ControlKind::Rreq).copied().unwrap_or(0),
        )
    }

    /// The paper's "RREP Recv": hop-wise *usable* RREPs received per
    /// RREQ initiated.
    pub fn rrep_recv_per_rreq(&self) -> f64 {
        safe_ratio(
            self.proto.get(&ProtoCounter::RrepUsableRecv).copied().unwrap_or(0),
            self.control_init.get(&ControlKind::Rreq).copied().unwrap_or(0),
        )
    }

    /// Hop-wise RREQ transmissions (broadcast flood volume).
    pub fn rreq_tx(&self) -> u64 {
        self.control_tx.get(&ControlKind::Rreq).copied().unwrap_or(0)
    }
}

fn safe_ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_dedup_and_latency() {
        let mut m = Metrics::new();
        m.data_originated = 4;
        assert!(m.record_delivery(1, 1, SimDuration::from_millis(10)));
        assert!(m.record_delivery(1, 2, SimDuration::from_millis(30)));
        assert!(!m.record_delivery(1, 1, SimDuration::from_millis(99)));
        assert_eq!(m.data_delivered, 2);
        assert_eq!(m.duplicate_deliveries, 1);
        assert!((m.delivery_ratio() - 0.5).abs() < 1e-12);
        assert!((m.mean_latency_s() - 0.020).abs() < 1e-12);
    }

    #[test]
    fn load_metrics() {
        let mut m = Metrics::new();
        m.data_originated = 10;
        for _ in 0..6 {
            m.record_control_tx(ControlKind::Rreq);
        }
        m.record_control_tx(ControlKind::Rrep);
        m.record_control_tx(ControlKind::Rerr);
        for _ in 0..2 {
            m.record_delivery(0, m.data_delivered as u32, SimDuration::ZERO);
        }
        assert_eq!(m.total_control_tx(), 8);
        assert!((m.network_load() - 4.0).abs() < 1e-12);
        assert!((m.rreq_load() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rrep_ratios() {
        let mut m = Metrics::new();
        for _ in 0..4 {
            m.record_control_init(ControlKind::Rreq);
        }
        for _ in 0..2 {
            m.record_control_init(ControlKind::Rrep);
        }
        m.record_proto(ProtoCounter::RrepUsableRecv, 6);
        assert!((m.rrep_init_per_rreq() - 0.5).abs() < 1e-12);
        assert!((m.rrep_recv_per_rreq() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_zero_not_nan() {
        let m = Metrics::new();
        assert_eq!(m.delivery_ratio(), 0.0);
        assert_eq!(m.network_load(), 0.0);
        assert_eq!(m.mean_latency_s(), 0.0);
        assert_eq!(m.rrep_init_per_rreq(), 0.0);
    }

    #[test]
    fn drop_and_proto_counters_accumulate() {
        let mut m = Metrics::new();
        m.record_drop(DropReason::NoRoute);
        m.record_drop(DropReason::NoRoute);
        m.record_drop(DropReason::TtlExpired);
        assert_eq!(m.drops[&DropReason::NoRoute], 2);
        assert_eq!(m.drops[&DropReason::TtlExpired], 1);
        m.record_proto(ProtoCounter::Salvage, 3);
        m.record_proto(ProtoCounter::Salvage, 2);
        assert_eq!(m.proto[&ProtoCounter::Salvage], 5);
    }
}
