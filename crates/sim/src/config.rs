//! Simulator configuration.

use crate::faults::FaultPlan;
use crate::telemetry::TelemetryConfig;
use crate::time::SimDuration;

/// Physical- and link-layer parameters (an IEEE 802.11-DCF-style radio,
/// matching the evaluation's 275 m transmission range and 2 Mbit/s rate).
#[derive(Clone, Debug, PartialEq)]
pub struct PhyConfig {
    /// Transmission/carrier-sense range in metres (unit-disk).
    pub range_m: f64,
    /// Channel bit rate in bits per second.
    pub bandwidth_bps: u64,
    /// Backoff slot time.
    pub slot: SimDuration,
    /// Short inter-frame space (before ACKs).
    pub sifs: SimDuration,
    /// Distributed inter-frame space (before data/backoff).
    pub difs: SimDuration,
    /// Minimum contention window (slots, inclusive upper bound `cw`).
    pub cw_min: u32,
    /// Maximum contention window.
    pub cw_max: u32,
    /// Maximum transmission attempts for a unicast frame before the MAC
    /// declares the link broken.
    pub retry_limit: u32,
    /// Interface (transmit) queue capacity in frames.
    pub ifq_cap: usize,
    /// PLCP preamble + header airtime prepended to every frame.
    pub preamble: SimDuration,
    /// One-way propagation delay (constant; ≤ 275 m is under 1 µs).
    pub prop_delay: SimDuration,
    /// MAC framing overhead added to every payload frame, bytes.
    pub mac_header_bytes: usize,
    /// Size of an ACK frame, bytes.
    pub ack_bytes: usize,
    /// Physical capture: when two frames overlap at a receiver, the
    /// earlier frame survives if its transmitter is at least this
    /// factor closer than the interferer (≈ the SNR capture threshold
    /// of real radios and of GloMoSim's PHY). `None` disables capture:
    /// any overlap corrupts both frames.
    pub capture_distance_ratio: Option<f64>,
}

impl Default for PhyConfig {
    fn default() -> Self {
        PhyConfig {
            range_m: 275.0,
            bandwidth_bps: 2_000_000,
            slot: SimDuration::from_micros(20),
            sifs: SimDuration::from_micros(10),
            difs: SimDuration::from_micros(50),
            cw_min: 31,
            cw_max: 1023,
            retry_limit: 7,
            ifq_cap: 50,
            preamble: SimDuration::from_micros(192),
            prop_delay: SimDuration::from_micros(1),
            mac_header_bytes: 34,
            ack_bytes: 14,
            // Off by default: the recorded experiment results were
            // produced with overlap-corrupts-both physics. Enable for
            // more forgiving (capture-capable) radios.
            capture_distance_ratio: None,
        }
    }
}

impl PhyConfig {
    /// Airtime of a frame whose network-layer size is `bytes`
    /// (preamble + MAC framing + payload at the channel rate).
    pub fn tx_duration(&self, bytes: usize) -> SimDuration {
        let total_bits = (bytes + self.mac_header_bytes) as u64 * 8;
        let ns = total_bits * 1_000_000_000 / self.bandwidth_bps;
        self.preamble + SimDuration::from_nanos(ns)
    }

    /// Airtime of an ACK frame.
    pub fn ack_duration(&self) -> SimDuration {
        let ns = (self.ack_bytes as u64 * 8) * 1_000_000_000 / self.bandwidth_bps;
        self.preamble + SimDuration::from_nanos(ns)
    }

    /// How long a unicast sender waits for an ACK after its transmission
    /// ends before counting a failed attempt.
    pub fn ack_timeout(&self) -> SimDuration {
        self.sifs
            + self.ack_duration()
            + self.prop_delay.saturating_mul(2)
            + SimDuration::from_micros(5)
    }

    /// An alternate parameterisation used by the Fig. 6 cross-check
    /// (the paper re-ran one scenario in Qualnet 3.5.2; we emulate
    /// "a different simulator" with different contention timing).
    pub fn alt_flavor() -> Self {
        PhyConfig {
            cw_min: 15,
            cw_max: 1023,
            retry_limit: 6,
            preamble: SimDuration::from_micros(96),
            ..PhyConfig::default()
        }
    }
}

/// Whole-run configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Radio/MAC parameters.
    pub phy: PhyConfig,
    /// Simulated run length (900 s in the paper).
    pub duration: SimDuration,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// If set, run the routing-loop auditor every interval (and record
    /// violations in the metrics).
    pub audit_interval: Option<SimDuration>,
    /// Audit after *every* protocol event (expensive; for tests).
    pub audit_every_event: bool,
    /// Run the every-mutation invariant auditor
    /// ([`crate::audit::InvariantAuditor`]): after each protocol
    /// callback, check fd-monotonicity-per-seqno and successor-graph
    /// acyclicity, and capture a forensic dump on the first violation.
    /// Much more expensive than `audit_every_event` alone; for tests
    /// and protocol debugging.
    pub invariant_audit: bool,
    /// Deterministic fault schedule executed by the event kernel
    /// ([`crate::faults`]). `None` runs fault-free.
    pub fault_plan: Option<FaultPlan>,
    /// Serve radio range queries from the spatial neighbor index
    /// ([`crate::spatial`]) instead of the O(N) all-nodes scan, and let
    /// the MAC elide provably no-op wake-up events. Grid-backed runs are
    /// byte-identical (metrics and trace) to linear-scan runs — the
    /// toggle only changes how fast the same answer is computed — so it
    /// defaults to on. Set `false` to force the reference linear scan
    /// (used by the differential tests and as the perfbench baseline).
    /// The grid also silently falls back to the linear scan when the
    /// mobility model cannot promise a finite speed bound
    /// ([`crate::mobility::MobilityModel::max_speed_mps`]).
    pub spatial_grid: bool,
    /// Observability layer ([`crate::telemetry`]): flight recorder and
    /// time-series sampler. `None` runs with telemetry fully off.
    /// Telemetry is observation-pure — enabling it may not change one
    /// observable bit of the run (metrics and trace are byte-identical
    /// either way; enforced by test).
    pub telemetry: Option<TelemetryConfig>,
    /// Worker threads for the deterministic parallel event kernel
    /// ([`crate::parallel`]). `0` and `1` mean sequential execution;
    /// ≥ 2 shards the world spatially and executes conservative time
    /// windows on worker threads. Every worker count produces output
    /// byte-identical to the sequential kernel (metrics, trace and
    /// telemetry; enforced by differential tests), so this knob only
    /// changes how fast the same answer is computed.
    pub workers: usize,
    /// Recycle hot-path buffers (protocol action lists, receiver
    /// batches) through [`crate::pool::VecPool`] free lists instead of
    /// allocating per event. Pooled runs are byte-identical (metrics,
    /// trace and telemetry) to unpooled runs — a recycled buffer is
    /// always handed out empty — so this defaults to on; the
    /// differential tests flip it off to diff against the
    /// allocate-per-event reference.
    pub recycle_pools: bool,
    /// Attach the deterministic kernel profiler ([`crate::prof`]):
    /// per-phase wall-time attribution, phase counts, and FEL-depth /
    /// window-size / component-count histograms, exported as
    /// `manet-prof` JSONL. The profiler is strictly observational —
    /// its wall-clock readings never feed simulation state, so a
    /// profiled run is byte-identical (metrics, trace and telemetry)
    /// to an unprofiled one (enforced by differential tests). Off by
    /// default; when off, no wall clock is ever read.
    pub profile: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            phy: PhyConfig::default(),
            duration: SimDuration::from_secs(900),
            seed: 1,
            audit_interval: None,
            audit_every_event: false,
            invariant_audit: false,
            fault_plan: None,
            spatial_grid: true,
            telemetry: None,
            workers: 1,
            recycle_pools: true,
            profile: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_duration_scales_with_size() {
        let phy = PhyConfig::default();
        // 532-byte packet + 34-byte MAC header = 566 B = 4528 bits at
        // 2 Mb/s = 2264 µs, plus 192 µs preamble.
        let d = phy.tx_duration(532);
        assert_eq!(d.as_micros(), 2264 + 192);
        assert!(phy.tx_duration(100) < phy.tx_duration(500));
    }

    #[test]
    fn ack_shorter_than_data() {
        let phy = PhyConfig::default();
        assert!(phy.ack_duration() < phy.tx_duration(532));
        assert!(phy.ack_timeout() > phy.ack_duration());
    }

    #[test]
    fn default_matches_paper_parameters() {
        let phy = PhyConfig::default();
        assert_eq!(phy.range_m, 275.0);
        assert_eq!(phy.bandwidth_bps, 2_000_000);
        assert_eq!(phy.ifq_cap, 50);
        let cfg = SimConfig::default();
        assert_eq!(cfg.duration.as_secs_f64(), 900.0);
    }

    #[test]
    fn alt_flavor_differs() {
        assert_ne!(PhyConfig::alt_flavor(), PhyConfig::default());
    }
}
