//! Crate-level property tests for the simulator substrate.

#![cfg(test)]

use crate::loopcheck::find_loops;
use crate::packet::NodeId;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// Brute-force oracle: for each destination, walk the successor chain
/// from every node with a visited set; revisiting any node before
/// terminating (at the destination or at a node without a successor)
/// means the chain contains a cycle.
fn has_loop_oracle(tables: &[Vec<(NodeId, NodeId)>]) -> bool {
    let mut succ: HashMap<NodeId, HashMap<NodeId, NodeId>> = HashMap::new();
    for (i, entries) in tables.iter().enumerate() {
        for &(dest, next) in entries {
            succ.entry(dest).or_default().insert(NodeId(i as u16), next);
        }
    }
    for (dest, map) in &succ {
        for &start in map.keys() {
            let mut seen = HashSet::new();
            let mut cur = start;
            loop {
                if cur == *dest {
                    break;
                }
                if !seen.insert(cur) {
                    return true; // revisited a node: cycle
                }
                match map.get(&cur) {
                    Some(&next) => cur = next,
                    None => break,
                }
            }
        }
    }
    false
}

proptest! {
    /// The loop auditor agrees with the brute-force oracle on random
    /// successor tables.
    #[test]
    fn loopcheck_matches_oracle(
        entries in proptest::collection::vec(
            (0u16..8, 0u16..8, 0u16..8), // (node, dest, next)
            0..40,
        )
    ) {
        let mut tables: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); 8];
        let mut seen = HashSet::new();
        for (node, dest, next) in entries {
            // One successor per (node, dest).
            if seen.insert((node, dest)) && node != next {
                tables[node as usize].push((NodeId(dest), NodeId(next)));
            }
        }
        let found = !find_loops(&tables).is_empty();
        let oracle = has_loop_oracle(&tables);
        prop_assert_eq!(found, oracle, "auditor and oracle disagree on {:?}", tables);
    }

    /// Every reported cycle is a genuine cycle: consecutive nodes are
    /// successor-linked and the ends meet.
    #[test]
    fn reported_cycles_are_real(
        entries in proptest::collection::vec(
            (0u16..6, 0u16..6, 0u16..6),
            0..30,
        )
    ) {
        let mut tables: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); 6];
        let mut seen = HashSet::new();
        for (node, dest, next) in entries {
            if seen.insert((node, dest)) && node != next {
                tables[node as usize].push((NodeId(dest), NodeId(next)));
            }
        }
        for v in find_loops(&tables) {
            prop_assert!(v.cycle.len() >= 3);
            prop_assert_eq!(v.cycle.first(), v.cycle.last());
            for w in v.cycle.windows(2) {
                let hop = tables[w[0].index()]
                    .iter()
                    .find(|(d, _)| *d == v.destination)
                    .map(|(_, n)| *n);
                prop_assert_eq!(hop, Some(w[1]), "cycle edge not in tables");
            }
        }
    }

    /// Frame airtime is monotone in payload size and positive.
    #[test]
    fn tx_duration_monotone(a in 0usize..4096, b in 0usize..4096) {
        let phy = crate::config::PhyConfig::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(phy.tx_duration(lo) <= phy.tx_duration(hi));
        prop_assert!(phy.tx_duration(lo) > crate::time::SimDuration::ZERO);
    }

    /// Random-waypoint positions stay within the terrain for arbitrary
    /// parameters and query times.
    #[test]
    fn rwp_always_in_bounds(
        seed in any::<u64>(),
        pause in 0u64..200,
        times in proptest::collection::vec(0u64..2000, 1..20),
    ) {
        use crate::mobility::{MobilityModel, RandomWaypoint};
        let terrain = crate::geometry::Terrain::new(1500.0, 300.0);
        let m = RandomWaypoint::new(
            5,
            terrain,
            crate::time::SimDuration::from_secs(pause),
            1.0,
            20.0,
            crate::rng::SimRng::from_seed(seed),
        );
        let mut sorted = times;
        sorted.sort_unstable();
        for t in sorted {
            for node in 0..5u16 {
                let p = m.position(NodeId(node), crate::time::SimTime::from_secs(t));
                prop_assert!(terrain.contains(p), "escaped: {p:?}");
            }
        }
    }
}
