//! # manet-sim — a deterministic MANET discrete-event simulator
//!
//! The simulation substrate for the LDR reproduction (PODC 2003,
//! Garcia-Luna-Aceves, Mosko & Perkins): a from-scratch replacement for
//! the paper's GloMoSim/Qualnet environment, providing
//!
//! * a discrete-event kernel with a deterministic future event list
//!   ([`event`], [`time`], [`rng`]);
//! * a unit-disk radio (275 m) with a CSMA/CA MAC — carrier sensing,
//!   binary-exponential backoff, ACK/retry unicast, jittered unreliable
//!   broadcast, drop-tail interface queues, collisions including hidden
//!   terminals ([`config`], [`mac`], [`world`]);
//! * random-waypoint, static and scripted mobility ([`mobility`]);
//! * the paper's CBR workload (512-byte packets at 4 packets/s per
//!   flow, exponential flow lifetimes) ([`traffic`]);
//! * metrics matching §4 of the paper — delivery ratio, network load,
//!   RREQ load, latency, RREP Init/Recv — with Student-t confidence
//!   intervals ([`metrics`], [`stats`]);
//! * an online routing-loop auditor that checks per-destination
//!   successor graphs at runtime ([`loopcheck`]);
//! * a routing-decision trace layer ([`trace`]) and an opt-in
//!   every-mutation invariant auditor with first-violation forensic
//!   dumps ([`audit`]);
//! * a deterministic fault-injection layer — node crash/restart with
//!   state loss, administrative link churn, regional partitions,
//!   per-link loss/corruption, stale-advert replay — scheduled on the
//!   same future event list ([`faults`]);
//! * a spatial neighbor index (uniform grid + epoch-cached positions)
//!   that answers radio range queries without scanning all N nodes,
//!   byte-identical to the linear scan ([`spatial`],
//!   [`SimConfig::spatial_grid`](config::SimConfig::spatial_grid));
//! * an observation-pure telemetry layer — bounded per-node flight
//!   recorder, sim-time time-series sampler, hand-rolled JSONL export —
//!   that never changes a run's observable behaviour ([`telemetry`],
//!   [`SimConfig::telemetry`](config::SimConfig::telemetry));
//! * a deterministic kernel profiler — per-phase wall-time
//!   attribution (FEL churn, neighbor queries, dispatch, protocol
//!   callbacks, the parallel pipeline), counts and histograms,
//!   rendered as `manet-prof` JSONL with wall times segregated from
//!   the byte-gated sections ([`prof`],
//!   [`SimConfig::profile`](config::SimConfig::profile)).
//!
//! Routing protocols implement [`protocol::RoutingProtocol`] and plug
//! into a [`world::World`].
//!
//! ## Example
//!
//! Run a static 3-node chain under fixed-table routing and count
//! deliveries:
//!
//! ```
//! use manet_sim::config::SimConfig;
//! use manet_sim::mobility::StaticMobility;
//! use manet_sim::packet::NodeId;
//! use manet_sim::static_routing::StaticRouting;
//! use manet_sim::time::{SimDuration, SimTime};
//! use manet_sim::world::World;
//!
//! let cfg = SimConfig { duration: SimDuration::from_secs(10), ..SimConfig::default() };
//! let tables = StaticRouting::tables_for_line(3);
//! let mut world = World::new(
//!     cfg,
//!     Box::new(StaticMobility::line(3, 200.0)),
//!     move |id, _| Box::new(StaticRouting::new(id, tables.clone())),
//! );
//! world.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(2), 512);
//! let metrics = world.run();
//! assert_eq!(metrics.data_delivered, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod config;
pub mod event;
pub mod faults;
pub mod geometry;
pub mod hash;
pub mod loopcheck;
pub mod mac;
pub mod metrics;
pub mod mobility;
pub mod packet;
pub mod parallel;
pub mod pool;
pub mod prof;
pub mod protocol;
pub mod rng;
pub mod spatial;
pub mod static_routing;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod trace;
pub mod traffic;
pub mod wire;
pub mod world;

pub use config::{PhyConfig, SimConfig};
pub use faults::{FaultAction, FaultIntensity, FaultPlan};
pub use metrics::Metrics;
pub use packet::{ControlKind, DataPacket, NodeId, Packet};
pub use protocol::{Ctx, RoutingProtocol};
pub use time::{SimDuration, SimTime};
pub use world::World;
mod proptests;
