//! Planar geometry for node placement and mobility.

use std::fmt;

/// A point (or vector) in the 2-D simulation plane, in metres.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// Easting, metres.
    pub x: f64,
    /// Northing, metres.
    pub y: f64,
}

impl Position {
    /// Constructs a position from metre coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position, in metres.
    ///
    /// ```
    /// use manet_sim::geometry::Position;
    /// let a = Position::new(0.0, 0.0);
    /// let b = Position::new(3.0, 4.0);
    /// assert_eq!(a.distance(b), 5.0);
    /// ```
    pub fn distance(self, other: Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared distance (avoids the square root for range tests).
    pub fn distance_sq(self, other: Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation: the point a fraction `f` of the way from
    /// `self` to `to` (`f` is clamped to `[0, 1]`).
    pub fn lerp(self, to: Position, f: f64) -> Position {
        let f = f.clamp(0.0, 1.0);
        Position::new(self.x + (to.x - self.x) * f, self.y + (to.y - self.y) * f)
    }
}

impl fmt::Debug for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// The rectangular terrain nodes move within: `[0, width] × [0, height]`
/// metres, matching the paper's 1500 m × 300 m and 2200 m × 600 m fields.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Terrain {
    /// Width in metres (x extent).
    pub width: f64,
    /// Height in metres (y extent).
    pub height: f64,
}

impl Terrain {
    /// Constructs a terrain rectangle.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not positive and finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(width.is_finite() && width > 0.0, "bad terrain width {width}");
        assert!(height.is_finite() && height > 0.0, "bad terrain height {height}");
        Terrain { width, height }
    }

    /// Whether a position lies within the terrain (inclusive edges).
    pub fn contains(&self, p: Position) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// A uniformly random position inside the terrain.
    pub fn random_position(&self, rng: &mut crate::rng::SimRng) -> Position {
        Position::new(rng.range_f64(0.0, self.width), rng.range_f64(0.0, self.height))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn distance_and_square() {
        let a = Position::new(1.0, 2.0);
        let b = Position::new(4.0, 6.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert_eq!((mid.x, mid.y), (5.0, 10.0));
        // Clamped outside [0, 1].
        assert_eq!(a.lerp(b, 2.0), b);
        assert_eq!(a.lerp(b, -1.0), a);
    }

    #[test]
    fn terrain_contains_and_random() {
        let t = Terrain::new(1500.0, 300.0);
        assert!(t.contains(Position::new(0.0, 0.0)));
        assert!(t.contains(Position::new(1500.0, 300.0)));
        assert!(!t.contains(Position::new(1500.1, 0.0)));
        assert!(!t.contains(Position::new(0.0, -0.1)));
        let mut rng = SimRng::from_seed(1);
        for _ in 0..1000 {
            assert!(t.contains(t.random_position(&mut rng)));
        }
    }

    #[test]
    #[should_panic]
    fn terrain_rejects_zero_width() {
        Terrain::new(0.0, 10.0);
    }
}
