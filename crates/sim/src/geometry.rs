//! Planar geometry for node placement and mobility.

use std::fmt;

/// A point (or vector) in the 2-D simulation plane, in metres.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// Easting, metres.
    pub x: f64,
    /// Northing, metres.
    pub y: f64,
}

impl Position {
    /// Constructs a position from metre coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position, in metres.
    ///
    /// ```
    /// use manet_sim::geometry::Position;
    /// let a = Position::new(0.0, 0.0);
    /// let b = Position::new(3.0, 4.0);
    /// assert_eq!(a.distance(b), 5.0);
    /// ```
    pub fn distance(self, other: Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared distance (avoids the square root for range tests).
    pub fn distance_sq(self, other: Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation: the point a fraction `f` of the way from
    /// `self` to `to` (`f` is clamped to `[0, 1]`).
    pub fn lerp(self, to: Position, f: f64) -> Position {
        let f = f.clamp(0.0, 1.0);
        Position::new(self.x + (to.x - self.x) * f, self.y + (to.y - self.y) * f)
    }
}

impl fmt::Debug for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// The rectangular terrain nodes move within: `[0, width] × [0, height]`
/// metres, matching the paper's 1500 m × 300 m and 2200 m × 600 m fields.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Terrain {
    /// Width in metres (x extent).
    pub width: f64,
    /// Height in metres (y extent).
    pub height: f64,
}

impl Terrain {
    /// Constructs a terrain rectangle.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not positive and finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(width.is_finite() && width > 0.0, "bad terrain width {width}");
        assert!(height.is_finite() && height > 0.0, "bad terrain height {height}");
        Terrain { width, height }
    }

    /// Whether a position lies within the terrain (inclusive edges).
    pub fn contains(&self, p: Position) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// A uniformly random position inside the terrain.
    pub fn random_position(&self, rng: &mut crate::rng::SimRng) -> Position {
        Position::new(rng.range_f64(0.0, self.width), rng.range_f64(0.0, self.height))
    }
}

/// A uniform cell decomposition of an axis-aligned rectangle, the
/// geometric substrate of the spatial neighbor index
/// ([`crate::spatial`]). Positions map to integer `(col, row)` cells;
/// out-of-rectangle positions clamp to the border cells, so every
/// position has a cell and range queries stay total.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellGrid {
    /// Lower-left corner of the covered rectangle.
    pub origin: Position,
    /// Cell edge length in metres (> 0).
    pub cell: f64,
    /// Number of columns (≥ 1).
    pub cols: usize,
    /// Number of rows (≥ 1).
    pub rows: usize,
}

impl CellGrid {
    /// The grid of `cell`-sized squares covering the axis-aligned
    /// bounding box `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics unless `cell` is positive and finite and `min <= max` on
    /// both axes.
    pub fn covering(min: Position, max: Position, cell: f64) -> Self {
        assert!(cell.is_finite() && cell > 0.0, "bad cell size {cell}");
        assert!(min.x <= max.x && min.y <= max.y, "empty bounding box {min:?}..{max:?}");
        let cols = (((max.x - min.x) / cell).floor() as usize + 1).max(1);
        let rows = (((max.y - min.y) / cell).floor() as usize + 1).max(1);
        CellGrid { origin: min, cell, cols, rows }
    }

    /// The `(col, row)` cell containing `p`, clamped to the grid.
    pub fn cell_of(&self, p: Position) -> (usize, usize) {
        let cx = ((p.x - self.origin.x) / self.cell).floor();
        let cy = ((p.y - self.origin.y) / self.cell).floor();
        let cx = if cx.is_finite() && cx > 0.0 { cx as usize } else { 0 };
        let cy = if cy.is_finite() && cy > 0.0 { cy as usize } else { 0 };
        (cx.min(self.cols - 1), cy.min(self.rows - 1))
    }

    /// Flat row-major index of a `(col, row)` cell.
    pub fn index(&self, col: usize, row: usize) -> usize {
        row * self.cols + col
    }

    /// Total number of cells.
    pub fn n_cells(&self) -> usize {
        self.cols * self.rows
    }

    /// The inclusive `(col, row)` ranges of every cell intersecting the
    /// disc of radius `radius` around `p` — the candidate neighborhood
    /// for a range query.
    pub fn cells_within(
        &self,
        p: Position,
        radius: f64,
    ) -> (std::ops::RangeInclusive<usize>, std::ops::RangeInclusive<usize>) {
        let (c0, r0) = self.cell_of(Position::new(p.x - radius, p.y - radius));
        let (c1, r1) = self.cell_of(Position::new(p.x + radius, p.y + radius));
        (c0..=c1, r0..=r1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn distance_and_square() {
        let a = Position::new(1.0, 2.0);
        let b = Position::new(4.0, 6.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert_eq!((mid.x, mid.y), (5.0, 10.0));
        // Clamped outside [0, 1].
        assert_eq!(a.lerp(b, 2.0), b);
        assert_eq!(a.lerp(b, -1.0), a);
    }

    #[test]
    fn terrain_contains_and_random() {
        let t = Terrain::new(1500.0, 300.0);
        assert!(t.contains(Position::new(0.0, 0.0)));
        assert!(t.contains(Position::new(1500.0, 300.0)));
        assert!(!t.contains(Position::new(1500.1, 0.0)));
        assert!(!t.contains(Position::new(0.0, -0.1)));
        let mut rng = SimRng::from_seed(1);
        for _ in 0..1000 {
            assert!(t.contains(t.random_position(&mut rng)));
        }
    }

    #[test]
    #[should_panic]
    fn terrain_rejects_zero_width() {
        Terrain::new(0.0, 10.0);
    }

    #[test]
    fn cell_grid_covers_and_clamps() {
        let g = CellGrid::covering(Position::new(0.0, 0.0), Position::new(1500.0, 300.0), 295.0);
        assert_eq!((g.cols, g.rows), (6, 2));
        assert_eq!(g.cell_of(Position::new(0.0, 0.0)), (0, 0));
        assert_eq!(g.cell_of(Position::new(294.9, 294.9)), (0, 0));
        assert_eq!(g.cell_of(Position::new(295.0, 295.0)), (1, 1));
        // Outside positions clamp to border cells.
        assert_eq!(g.cell_of(Position::new(-50.0, 1e9)), (0, 1));
        assert_eq!(g.cell_of(Position::new(1e9, -1.0)), (5, 0));
        assert_eq!(g.n_cells(), 12);
        assert_eq!(g.index(5, 1), 11);
    }

    #[test]
    fn cell_grid_range_query_covers_disc() {
        let g = CellGrid::covering(Position::new(0.0, 0.0), Position::new(1000.0, 1000.0), 100.0);
        let (cs, rs) = g.cells_within(Position::new(500.0, 500.0), 150.0);
        assert_eq!((cs, rs), (3..=6, 3..=6));
        // A query near the corner clamps without panicking.
        let (cs, rs) = g.cells_within(Position::new(10.0, 990.0), 300.0);
        assert_eq!(*cs.start(), 0);
        assert_eq!(*rs.end(), g.rows - 1);
    }

    #[test]
    fn cell_grid_degenerate_bbox() {
        // All nodes at one point: a 1×1 grid.
        let p = Position::new(7.0, 7.0);
        let g = CellGrid::covering(p, p, 275.0);
        assert_eq!((g.cols, g.rows), (1, 1));
        assert_eq!(g.cell_of(Position::new(-100.0, 100.0)), (0, 0));
    }
}
