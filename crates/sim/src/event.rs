//! The future event list (FEL) of the discrete-event kernel.

use crate::packet::NodeId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled occurrence in the simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// Re-evaluate a node's MAC state machine (backoff expiry, queue
    /// service, medium re-check).
    MacKick(NodeId),
    /// A node's transmission finishes.
    TxEnd {
        /// Transmitting node.
        node: NodeId,
        /// Transmission id.
        tx_id: u64,
    },
    /// A frame finishes arriving at a receiver.
    RxEnd {
        /// Receiving node.
        node: NodeId,
        /// Transmission id.
        tx_id: u64,
    },
    /// A unicast sender's ACK wait expires.
    AckTimeout {
        /// Waiting sender.
        node: NodeId,
        /// Transmission id awaited.
        tx_id: u64,
    },
    /// A routing-protocol timer fires.
    ProtocolTimer {
        /// Owning node.
        node: NodeId,
        /// Protocol-chosen token.
        token: u64,
    },
    /// A CBR flow emits its next packet.
    FlowPacket {
        /// Flow slot index.
        flow: u32,
    },
    /// A CBR flow ends and is replaced.
    FlowEnd {
        /// Flow slot index.
        flow: u32,
    },
    /// A manually scheduled application packet (tests/examples).
    AppSend {
        /// Index into the manual packet list.
        idx: u32,
    },
    /// A node crashes and restarts, losing volatile protocol state.
    Reboot {
        /// The rebooting node.
        node: NodeId,
    },
    /// A scheduled fault-plan action fires
    /// (see [`crate::faults::FaultPlan`]).
    Fault {
        /// Index into the plan's entry list.
        idx: u32,
    },
    /// A crashed node comes back up with total state loss (scheduled by
    /// [`crate::faults::FaultAction::CrashRestart`]).
    FaultRestart {
        /// The restarting node.
        node: NodeId,
    },
    /// Periodic audit hook (loop checking, sampling).
    Audit,
}

/// FEL entry: ordered by time, then by insertion sequence (FIFO among
/// simultaneous events, which keeps runs deterministic).
#[derive(Clone, Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered queue of future events.
///
/// ```
/// use manet_sim::event::{Event, EventQueue};
/// use manet_sim::packet::NodeId;
/// use manet_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), Event::Audit);
/// q.schedule(SimTime::from_secs(1), Event::MacKick(NodeId(0)));
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(t, SimTime::from_secs(1));
/// assert_eq!(e, Event::MacKick(NodeId(0)));
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` to occur at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event, if any. Events scheduled
    /// for the same instant come out in insertion order.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), Event::Audit);
        q.schedule(SimTime::from_secs(1), Event::FlowPacket { flow: 1 });
        q.schedule(SimTime::from_secs(2), Event::FlowEnd { flow: 1 });
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.as_nanos()).collect();
        assert_eq!(times, vec![1_000_000_000, 2_000_000_000, 3_000_000_000]);
    }

    #[test]
    fn fifo_among_simultaneous_events() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for flow in 0..100 {
            q.schedule(t, Event::FlowPacket { flow });
        }
        for expect in 0..100 {
            match q.pop().unwrap().1 {
                Event::FlowPacket { flow } => assert_eq!(flow, expect),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(9), Event::Audit);
        q.schedule(SimTime::from_secs(4), Event::Audit);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), Event::Audit);
        q.schedule(SimTime::from_secs(5), Event::Audit);
        let (t1, _) = q.pop().unwrap();
        assert_eq!(t1, SimTime::from_secs(5));
        q.schedule(SimTime::from_secs(7), Event::Audit);
        q.schedule(SimTime::from_secs(6), Event::Audit);
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2, SimTime::from_secs(6));
        let (t3, _) = q.pop().unwrap();
        assert_eq!(t3, SimTime::from_secs(7));
        let (t4, _) = q.pop().unwrap();
        assert_eq!(t4, SimTime::from_secs(10));
    }
}
