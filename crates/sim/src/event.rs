//! The future event list (FEL) of the discrete-event kernel.

use crate::packet::NodeId;
use crate::time::SimTime;

/// A scheduled occurrence in the simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// Re-evaluate a node's MAC state machine (backoff expiry, queue
    /// service, medium re-check).
    MacKick(NodeId),
    /// A node's transmission finishes.
    TxEnd {
        /// Transmitting node.
        node: NodeId,
        /// Transmission id.
        tx_id: u64,
    },
    /// A frame finishes arriving at a receiver.
    RxEnd {
        /// Receiving node.
        node: NodeId,
        /// Transmission id.
        tx_id: u64,
    },
    /// A frame finishes arriving at *every* receiver of one
    /// transmission (fast-path form of `RxEnd`; see
    /// `World::propagate`). All of a transmission's receptions end at
    /// the same instant and were scheduled back to back, so replacing
    /// the per-receiver events with one batch — processed in the same
    /// ascending receiver order — is observation-equivalent and spares
    /// the event queue its largest event class.
    RxEndBatch {
        /// Transmission id.
        tx_id: u64,
    },
    /// A unicast sender's ACK wait expires.
    AckTimeout {
        /// Waiting sender.
        node: NodeId,
        /// Transmission id awaited.
        tx_id: u64,
    },
    /// A routing-protocol timer fires.
    ProtocolTimer {
        /// Owning node.
        node: NodeId,
        /// Protocol-chosen token.
        token: u64,
    },
    /// A CBR flow emits its next packet.
    FlowPacket {
        /// Flow slot index.
        flow: u32,
    },
    /// A CBR flow ends and is replaced.
    FlowEnd {
        /// Flow slot index.
        flow: u32,
    },
    /// A manually scheduled application packet (tests/examples).
    AppSend {
        /// Index into the manual packet list.
        idx: u32,
    },
    /// A node crashes and restarts, losing volatile protocol state.
    Reboot {
        /// The rebooting node.
        node: NodeId,
    },
    /// A scheduled fault-plan action fires
    /// (see [`crate::faults::FaultPlan`]).
    Fault {
        /// Index into the plan's entry list.
        idx: u32,
    },
    /// A crashed node comes back up with total state loss (scheduled by
    /// [`crate::faults::FaultAction::CrashRestart`]).
    FaultRestart {
        /// The restarting node.
        node: NodeId,
    },
    /// Periodic audit hook (loop checking, sampling).
    Audit,
    /// Periodic time-series telemetry sample
    /// (see [`crate::telemetry`]). The handler only snapshots kernel
    /// state and schedules its own successor — it draws no randomness
    /// and mutates nothing observable, so attaching the sampler cannot
    /// change a run's metrics or trace.
    TelemetrySample,
}

impl Event {
    /// Number of event kinds (for fixed-size per-kind counters).
    pub const KIND_COUNT: usize = 14;

    /// Stable wire names of the event kinds, indexed by
    /// [`Event::kind_index`]. Order is the enum's declaration order;
    /// appending a variant appends a name (telemetry schema stability).
    pub const KIND_NAMES: [&'static str; Self::KIND_COUNT] = [
        "mac_kick",
        "tx_end",
        "rx_end",
        "rx_end_batch",
        "ack_timeout",
        "protocol_timer",
        "flow_packet",
        "flow_end",
        "app_send",
        "reboot",
        "fault",
        "fault_restart",
        "audit",
        "telemetry_sample",
    ];

    /// Index of this event's kind into [`Event::KIND_NAMES`].
    pub fn kind_index(&self) -> usize {
        match self {
            Event::MacKick(_) => 0,
            Event::TxEnd { .. } => 1,
            Event::RxEnd { .. } => 2,
            Event::RxEndBatch { .. } => 3,
            Event::AckTimeout { .. } => 4,
            Event::ProtocolTimer { .. } => 5,
            Event::FlowPacket { .. } => 6,
            Event::FlowEnd { .. } => 7,
            Event::AppSend { .. } => 8,
            Event::Reboot { .. } => 9,
            Event::Fault { .. } => 10,
            Event::FaultRestart { .. } => 11,
            Event::Audit => 12,
            Event::TelemetrySample => 13,
        }
    }
}

/// FEL entry: ordered by time, then by insertion sequence (FIFO among
/// simultaneous events, which keeps runs deterministic).
#[derive(Clone, Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

/// A time-ordered queue of future events.
///
/// ```
/// use manet_sim::event::{Event, EventQueue};
/// use manet_sim::packet::NodeId;
/// use manet_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), Event::Audit);
/// q.schedule(SimTime::from_secs(1), Event::MacKick(NodeId(0)));
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(t, SimTime::from_secs(1));
/// assert_eq!(e, Event::MacKick(NodeId(0)));
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    /// 4-ary min-heap on `(at, seq)`. The FEL's pop order is a unique
    /// total order (every entry has a distinct `seq`), so any correct
    /// priority queue yields the identical event sequence; a 4-ary
    /// layout halves the tree height vs the binary `BinaryHeap` and
    /// measurably cuts pop cost, the kernel's hottest operation at
    /// paper scale.
    heap: Vec<Scheduled>,
    next_seq: u64,
}

/// Heap arity. Four children per node: shallower sift-downs, and the
/// children of node `i` (`4i+1 .. 4i+4`) share a cache line.
const HEAP_ARITY: usize = 4;

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn before(a: &Scheduled, b: &Scheduled) -> bool {
        (a.at, a.seq) < (b.at, b.seq)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / HEAP_ARITY;
            if Self::before(&self.heap[i], &self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let first_child = i * HEAP_ARITY + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + HEAP_ARITY).min(len);
            let mut best = first_child;
            for c in first_child + 1..last_child {
                if Self::before(&self.heap[c], &self.heap[best]) {
                    best = c;
                }
            }
            if Self::before(&self.heap[best], &self.heap[i]) {
                self.heap.swap(i, best);
                i = best;
            } else {
                break;
            }
        }
    }

    /// Schedules `event` to occur at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the earliest event, if any. Events scheduled
    /// for the same instant come out in insertion order.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let last = self.heap.len().checked_sub(1)?;
        self.heap.swap(0, last);
        let s = self.heap.pop()?;
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some((s.at, s.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|s| s.at)
    }

    /// Visits every pending entry in arbitrary (heap-internal) order
    /// without disturbing the queue. The parallel kernel
    /// ([`crate::parallel`]) uses this to scan a time window's events
    /// and classify them before deciding how to execute the window;
    /// popping afterwards still yields the canonical `(time, seq)`
    /// order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (SimTime, &Event)> {
        self.heap.iter().map(|s| (s.at, &s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), Event::Audit);
        q.schedule(SimTime::from_secs(1), Event::FlowPacket { flow: 1 });
        q.schedule(SimTime::from_secs(2), Event::FlowEnd { flow: 1 });
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.as_nanos()).collect();
        assert_eq!(times, vec![1_000_000_000, 2_000_000_000, 3_000_000_000]);
    }

    #[test]
    fn fifo_among_simultaneous_events() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for flow in 0..100 {
            q.schedule(t, Event::FlowPacket { flow });
        }
        for expect in 0..100 {
            match q.pop().unwrap().1 {
                Event::FlowPacket { flow } => assert_eq!(flow, expect),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(9), Event::Audit);
        q.schedule(SimTime::from_secs(4), Event::Audit);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn heap_stress_matches_reference_queue() {
        // Pseudo-random schedule/pop interleaving; every pop must return
        // the (time, insertion-order) minimum of what is pending, which
        // is checked against a naive reference queue step by step.
        let mut q = EventQueue::new();
        let mut pending: Vec<(u64, u32)> = Vec::new();
        let mut lcg: u64 = 0x1234_5678_9abc_def0;
        let mut next = || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let check_pop = |q: &mut EventQueue, pending: &mut Vec<(u64, u32)>| {
            let Some((at, ev)) = q.pop() else {
                assert!(pending.is_empty());
                return;
            };
            let flow = match ev {
                Event::FlowPacket { flow } => flow,
                other => panic!("unexpected event {other:?}"),
            };
            let min_idx = (0..pending.len())
                .min_by_key(|&i| pending[i])
                .expect("reference queue empty but heap was not");
            assert_eq!((at.as_nanos() / 1_000_000, flow), pending[min_idx]);
            pending.remove(min_idx);
        };
        for i in 0..2000u32 {
            let t = next() % 50;
            pending.push((t, i));
            q.schedule(SimTime::from_millis(t), Event::FlowPacket { flow: i });
            if next() % 3 == 0 {
                check_pop(&mut q, &mut pending);
            }
        }
        while !q.is_empty() {
            check_pop(&mut q, &mut pending);
        }
        assert!(pending.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), Event::Audit);
        q.schedule(SimTime::from_secs(5), Event::Audit);
        let (t1, _) = q.pop().unwrap();
        assert_eq!(t1, SimTime::from_secs(5));
        q.schedule(SimTime::from_secs(7), Event::Audit);
        q.schedule(SimTime::from_secs(6), Event::Audit);
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2, SimTime::from_secs(6));
        let (t3, _) = q.pop().unwrap();
        assert_eq!(t3, SimTime::from_secs(7));
        let (t4, _) = q.pop().unwrap();
        assert_eq!(t4, SimTime::from_secs(10));
    }
}
