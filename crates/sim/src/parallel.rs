//! Deterministic parallel event kernel.
//!
//! With [`SimConfig::workers`](crate::config::SimConfig::workers) ≥ 2,
//! [`World::run_until`](crate::world::World::run_until) delegates here.
//! The driver cuts simulated time into *conservative windows* of length
//!
//! ```text
//! L = prop_delay + min(ack_duration, tx_duration(0))
//! ```
//!
//! — the minimum delay between putting a frame on the air and any
//! station finishing its reception. Every reception that *starts*
//! inside a window therefore *completes* at or after the window's end,
//! so inside one window information can travel at most one radio hop.
//!
//! # How a window runs
//!
//! 1. **Scan.** The pending events with `t < w_end` are inspected (a
//!    non-destructive walk of the FEL). If any of them is a global
//!    event (traffic, faults, audits, telemetry samples), if link
//!    impairments are live (their RNG draws must happen in canonical
//!    order), if an every-event auditor is attached, or if the window
//!    is too small to be worth fanning out, the window executes on the
//!    plain sequential loop — literally the unchanged
//!    [`World::execute`](crate::world::World::execute) path, so those
//!    windows are trivially byte-identical.
//! 2. **Partition.** Otherwise every window event is *node-homed*. Node
//!    positions (from cached [`MotionLeg`]s, bitwise equal to what the
//!    sequential kernel would read) are bucketed into square cells of
//!    side `range_m + slack`, so one radio hop spans at most one cell
//!    in Chebyshev distance. Home cells within Chebyshev distance 4 are
//!    merged; the resulting components are ≥ 5 cells apart, and each
//!    component's *footprint* (homes dilated by 2 cells) is provably
//!    disjoint from every other's. A window with fewer than two
//!    components runs sequentially.
//! 3. **Execute.** Each component becomes a [`Shard`]: exclusive `&mut`
//!    access to its footprint's node slots, a local event queue seeded
//!    with its window events in global drain order, and *buffered*
//!    side effects — trace emissions, metric mutations, future-event
//!    schedules — instead of applied ones. Shards run on scoped worker
//!    threads. In-window children (MAC wake-ups, protocol timers) are
//!    executed locally; everything else becomes a buffered schedule.
//! 4. **Replay.** The per-event effect records are merged in canonical
//!    order — window events by their FEL drain order, locally executed
//!    children by the order the merged replay re-encounters their
//!    scheduling, which reproduces the FEL sequence numbers the
//!    sequential kernel would have allocated — and applied to the
//!    [`World`]: metrics mutate in the sequential order (bitwise `f64`
//!    equality), trace sinks observe the sequential stream, and
//!    post-window events enter the FEL with the sequential relative
//!    order.
//!
//! The result is byte-identical metrics, trace and telemetry for every
//! worker count, enforced by differential tests; the knob only changes
//! wall-clock time.

use crate::config::PhyConfig;
use crate::event::Event;
use crate::faults::{FaultState, RxFate};
use crate::geometry::Position;
use crate::mobility::MotionLeg;
use crate::packet::NodeId;
use crate::pool::VecPool;
use crate::protocol::Action;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceEvent;
use crate::world::{
    call_protocol, mac_kick, on_ack_timeout, on_rx_end, on_rx_end_batch, on_tx_end, Kern, MetricOp,
    NodeSlot, World,
};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Windows with fewer pending events than this run sequentially: the
/// thread fan-out costs more than it saves.
const MIN_PARALLEL_EVENTS: usize = 8;

/// Slack added to the radio range when sizing partition cells, so that
/// sub-window node motion (micrometres over a sub-millisecond window at
/// vehicular speeds) can never push a receiver beyond one cell.
const CELL_SLACK_M: f64 = 5.0;

/// Home cells within this Chebyshev distance merge into one component.
/// With mutation reach ≤ 2 cells from any home, unmerged components
/// (≥ 5 apart) have disjoint footprints.
const MERGE_CHEBYSHEV: i64 = 4;

/// Footprint dilation: a shard owns every node within this many cells
/// of one of its home cells. Handlers touch at most dilate-1 (the
/// executing node plus its radio neighborhood); 2 leaves a margin.
const FOOTPRINT_DILATION: i64 = 2;

/// Replay keys for locally executed children start here — above any
/// possible window drain index, so children at an instant sort after
/// every pre-existing event at that instant, exactly as their
/// (later-allocated) FEL sequence numbers would have.
const CHILD_KEY_BASE: u64 = u64::MAX / 2;

/// The conservative window length: no reception that starts in a
/// window can end before `start + L`.
fn window_lookahead(phy: &PhyConfig) -> SimDuration {
    phy.prop_delay + phy.ack_duration().min(phy.tx_duration(0))
}

/// How many lookaheads a failed-plan sequential fallback window
/// spans before the planner retries.
const SEQ_FALLBACK_STRETCH: u64 = 4;

/// Parallel-kernel entry point: processes all events with `t ≤ until`,
/// then sets the clock to `until`. Byte-identical to the sequential
/// [`World::run_until`] loop.
pub(crate) fn run_until_parallel(world: &mut World, until: SimTime) {
    // Bottom profiler frame, exactly like the sequential loop's
    // (no-ops when profiling is off).
    Kern::prof_enter(world, crate::prof::PHASE_KERN_LOOP);
    let lookahead = window_lookahead(&world.cfg.phy);
    let cell = world.cfg.phy.range_m + CELL_SLACK_M;
    let n = world.nodes.len();
    let workers = world.cfg.workers;
    // A zero lookahead (degenerate PHY with no airtime) voids the
    // one-hop-per-window argument; run such configurations entirely
    // sequentially.
    let can_parallel = lookahead > SimDuration::ZERO && cell.is_finite() && cell > 0.0;
    // Cached motion legs, refreshed per window; `valid_until == ZERO`
    // forces the first refresh before any position is read.
    let mut legs: Vec<MotionLeg> = vec![MotionLeg::parked(Position::default(), SimTime::ZERO); n];
    let limit = until + SimDuration::from_nanos(1);
    loop {
        // The peek sits inside the plan span: deciding whether a
        // window exists is part of planning it.
        Kern::prof_enter(world, crate::prof::PHASE_PAR_PLAN);
        let t0 = match world.fel.peek_time() {
            Some(t0) if t0 <= until => t0,
            _ => {
                Kern::prof_exit(world);
                break;
            }
        };
        let w_end = (t0 + lookahead).min(limit);
        let plan = if can_parallel {
            let mut legs_ok = true;
            for (i, leg) in legs.iter_mut().enumerate() {
                if leg.valid_until < w_end {
                    // Leg lookups are observation-pure (enforced by the
                    // mobility order-independence tests), so refreshing
                    // here cannot perturb the run.
                    *leg = world.mobility.motion_leg(NodeId(i as u16), t0);
                    legs_ok &= leg.valid_until >= w_end;
                }
            }
            if legs_ok {
                plan_window(world, t0, w_end, cell, &legs)
            } else {
                None
            }
        } else {
            None
        };
        Kern::prof_exit(world);
        match plan {
            Some(plan) => run_window_parallel(world, t0, w_end, cell, plan, &legs, workers),
            // A failed plan falls back to a *stretched* sequential
            // window: planning every single-lookahead window that
            // cannot fan out is pure overhead, and sequential windows
            // execute in global FEL order whatever their boundaries,
            // so the stretch is observably identical — it only delays
            // the next parallelisation attempt.
            None => run_window_sequential(
                world,
                (t0 + lookahead.saturating_mul(SEQ_FALLBACK_STRETCH)).min(limit),
            ),
        }
    }
    Kern::prof_exit(world);
    world.now = until;
}

/// Executes one window on the unchanged sequential path.
fn run_window_sequential(world: &mut World, w_end: SimTime) {
    world.run_events(w_end, false);
}

/// A committed plan for one parallel window: the disjoint dilated
/// footprints, as a map from cell to owning component.
struct WindowPlan {
    /// Number of components (≥ 2).
    n_comps: usize,
    /// Dilated footprint cells → component id. Home-cell lookups always
    /// hit (a home is inside its own dilation); nodes outside every
    /// footprint are untouched for the whole window.
    comp_of_cell: BTreeMap<(i64, i64), u32>,
}

/// The partition cell of a position.
fn cell_of(p: Position, cell: f64) -> (i64, i64) {
    ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
}

/// Union-find root with path halving.
fn uf_find(parent: &mut [usize], mut i: usize) -> usize {
    while parent[i] != i {
        parent[i] = parent[parent[i]];
        i = parent[i];
    }
    i
}

/// Classifies the window `[t0, w_end)` and, if it is safe to fan out,
/// builds the spatial partition. `None` routes the window down the
/// sequential path.
fn plan_window(
    world: &World,
    t0: SimTime,
    w_end: SimTime,
    cell: f64,
    legs: &[MotionLeg],
) -> Option<WindowPlan> {
    // Every-event auditors observe protocol state between events; the
    // sequential path is the only one that interleaves them correctly.
    if world.auditor.is_some() || world.cfg.audit_every_event {
        return None;
    }
    // Live link impairments draw from the shared "faults" RNG stream
    // per received frame; those draws must happen in canonical order.
    if world.faults.as_ref().is_some_and(|f| f.has_impairments()) {
        return None;
    }
    let mut count = 0usize;
    let mut homes: Vec<(i64, i64)> = Vec::new();
    for (t, ev) in world.fel.iter() {
        if t >= w_end {
            continue;
        }
        count += 1;
        match ev {
            Event::MacKick(node)
            | Event::TxEnd { node, .. }
            | Event::RxEnd { node, .. }
            | Event::AckTimeout { node, .. }
            | Event::ProtocolTimer { node, .. } => {
                homes.push(cell_of(legs[node.index()].pos_at(t0), cell));
            }
            Event::RxEndBatch { tx_id } => {
                // The batch executes at the stored receivers and ACKs
                // flow back toward the sender: home them all (they are
                // pairwise within 2 cells, so they merge below).
                let receivers = world.rx_batches.get(tx_id)?;
                let sender = NodeId((tx_id >> 48) as u16);
                homes.push(cell_of(legs[sender.index()].pos_at(t0), cell));
                for r in receivers {
                    homes.push(cell_of(legs[r.index()].pos_at(t0), cell));
                }
            }
            // Global events (traffic, faults, reboots, audits,
            // telemetry samples) mutate world-level state; their
            // windows run sequentially.
            _ => return None,
        }
    }
    if count < MIN_PARALLEL_EVENTS {
        return None;
    }
    homes.sort_unstable();
    homes.dedup();
    // Merge home cells within MERGE_CHEBYSHEV into components.
    let mut parent: Vec<usize> = (0..homes.len()).collect();
    for i in 0..homes.len() {
        for j in (i + 1)..homes.len() {
            let dx = (homes[i].0 - homes[j].0).abs();
            let dy = (homes[i].1 - homes[j].1).abs();
            if dx.max(dy) <= MERGE_CHEBYSHEV {
                let (ri, rj) = (uf_find(&mut parent, i), uf_find(&mut parent, j));
                parent[ri] = rj;
            }
        }
    }
    let mut comp_ids: Vec<u32> = vec![u32::MAX; homes.len()];
    let mut n_comps = 0u32;
    for i in 0..homes.len() {
        let r = uf_find(&mut parent, i);
        if comp_ids[r] == u32::MAX {
            comp_ids[r] = n_comps;
            n_comps += 1;
        }
        comp_ids[i] = comp_ids[r];
    }
    if n_comps < 2 {
        return None;
    }
    // Dilate each component's homes into its footprint. Distinct
    // components are ≥ MERGE_CHEBYSHEV + 1 apart, so dilations cannot
    // collide; the conflict check below is defence in depth (on a
    // conflict the window just runs sequentially).
    let mut comp_of_cell: BTreeMap<(i64, i64), u32> = BTreeMap::new();
    for (i, &(cx, cy)) in homes.iter().enumerate() {
        let comp = comp_ids[i];
        for dx in -FOOTPRINT_DILATION..=FOOTPRINT_DILATION {
            for dy in -FOOTPRINT_DILATION..=FOOTPRINT_DILATION {
                match comp_of_cell.entry((cx + dx, cy + dy)) {
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert(comp);
                    }
                    std::collections::btree_map::Entry::Occupied(o) => {
                        if *o.get() != comp {
                            return None;
                        }
                    }
                }
            }
        }
    }
    Some(WindowPlan { n_comps: n_comps as usize, comp_of_cell })
}

/// How a locally executed event entered the window: drained from the
/// FEL (keyed by its global drain index) or scheduled in-window by an
/// earlier local event (keyed by a per-shard child id).
#[derive(Clone, Copy, Debug)]
enum StartKey {
    /// Pre-existing window event; value is its FEL drain index.
    Drain(u64),
    /// In-window child; value is the shard-local child id.
    Child(u32),
}

/// One buffered side effect of a shard-executed event, applied to the
/// [`World`] at replay in canonical order.
enum Effect {
    /// `Kern::emit`.
    Emit(TraceEvent),
    /// `Kern::bump_trace_events`.
    TraceBump,
    /// `Kern::metric`.
    Metric(MetricOp),
    /// A post-window schedule: enters the real FEL at replay, so its
    /// sequence number is allocated in canonical order.
    ScheduleFel {
        /// Absolute event time (≥ the window end).
        at: SimTime,
        /// The scheduled event.
        event: Event,
    },
    /// An in-window schedule, executed locally by the shard; replay
    /// re-keys the child's record at the point the sequential kernel
    /// would have allocated its sequence number.
    ScheduleChild {
        /// Absolute event time (inside the window).
        at: SimTime,
        /// Shard-local child id, resolved via `CompResult::child_map`.
        child: u32,
    },
    /// `Kern::store_batch` (always post-window: receptions started in
    /// a window end at or after its end).
    StoreBatch {
        /// Transmission id.
        tx_id: u64,
        /// Pending receivers, ascending.
        receivers: Vec<NodeId>,
    },
}

/// The execution record of one shard-executed event.
struct ExecRecord {
    /// Event time.
    t: SimTime,
    /// [`Event::kind_index`] (for the dispatch counters).
    kind: usize,
    /// How the event was keyed locally.
    start: StartKey,
    /// Buffered effects, in handler emission order.
    effects: Vec<Effect>,
}

/// One component's inputs: its window events (in drain order), the
/// receiver batches of its `RxEndBatch` events, and exclusive slot
/// borrows for its footprint nodes.
struct CompTask<'a> {
    events: Vec<(SimTime, u64, Event)>,
    batches: BTreeMap<u64, Vec<NodeId>>,
    slots: Vec<(u16, &'a mut NodeSlot)>,
    slot_index: Vec<u32>,
}

/// One component's outputs.
struct CompResult {
    comp: u32,
    records: Vec<ExecRecord>,
    /// Child id → index into `records`.
    child_map: Vec<usize>,
}

/// Read-only state every shard shares.
#[derive(Clone, Copy)]
struct Shared<'b> {
    phy: &'b PhyConfig,
    faults: Option<&'b FaultState>,
    legs: &'b [MotionLeg],
    fast_path: bool,
    trace_on: bool,
    n: usize,
    w_end: SimTime,
}

/// A locally queued event awaiting shard execution.
struct PendingEv {
    event: Event,
    start: StartKey,
}

/// A spatial shard: one window component executing on a worker thread.
///
/// Implements [`Kern`] so the node-local handlers in
/// [`crate::world`] run unchanged. Reads are answered from the cached
/// legs and borrowed slots (proven bitwise equal to the sequential
/// kernel's answers); writes to kernel-global state are buffered as
/// [`Effect`]s.
struct Shard<'a, 'b> {
    shared: Shared<'b>,
    now: SimTime,
    slots: Vec<(u16, &'a mut NodeSlot)>,
    /// Global node index → index into `slots`; `u32::MAX` marks a node
    /// outside the footprint (touching it is a kernel bug and fails
    /// loudly on the slot-index bound check).
    slot_index: Vec<u32>,
    scratch: Vec<(NodeId, f64)>,
    batches: BTreeMap<u64, Vec<NodeId>>,
    pool: Vec<Vec<NodeId>>,
    /// Shard-local protocol-action buffer pool. Always recycling:
    /// pooling is observationally neutral (buffers hand out empty), so
    /// the shard does not need to consult `recycle_pools` — the
    /// parallel differential tests prove byte-identity either way.
    action_pool: VecPool<Action>,
    /// Current event's buffered effects.
    effects: Vec<Effect>,
    child_ctr: u32,
    /// Local queue: `(t, key, pending index)`, min-ordered. Keys are
    /// drain indices for window events and `CHILD_KEY_BASE + id` for
    /// children — the same total order the sequential FEL would use.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    pending: Vec<Option<PendingEv>>,
    records: Vec<ExecRecord>,
}

impl Shard<'_, '_> {
    /// Executes one local event: replicates the crash gate of
    /// `World::dispatch`, runs the node-local handler against this
    /// shard, and snapshots the buffered effects as a record. Gated
    /// events still record (the sequential kernel counts them too).
    fn exec(&mut self, t: SimTime, pev: PendingEv) {
        debug_assert!(t >= self.now, "shard event from the past");
        self.now = t;
        let kind = pev.event.kind_index();
        let gated = match pev.event {
            Event::MacKick(node)
            | Event::TxEnd { node, .. }
            | Event::RxEnd { node, .. }
            | Event::AckTimeout { node, .. }
            | Event::ProtocolTimer { node, .. } => self.node_down(node),
            _ => false,
        };
        if !gated {
            match pev.event {
                Event::MacKick(node) => mac_kick(self, node),
                Event::TxEnd { node, tx_id } => on_tx_end(self, node, tx_id),
                Event::RxEnd { node, tx_id } => on_rx_end(self, node, tx_id),
                Event::RxEndBatch { tx_id } => on_rx_end_batch(self, tx_id),
                Event::AckTimeout { node, tx_id } => on_ack_timeout(self, node, tx_id),
                Event::ProtocolTimer { node, token } => {
                    call_protocol(self, node, |p, ctx| p.handle_timer(ctx, token));
                }
                // Excluded by classification; nothing to run.
                _ => debug_assert!(false, "non-local event reached a shard"),
            }
        }
        let effects = std::mem::take(&mut self.effects);
        self.records.push(ExecRecord { t, kind, start: pev.start, effects });
    }
}

impl Kern for Shard<'_, '_> {
    fn now(&self) -> SimTime {
        self.now
    }
    fn phy(&self) -> &PhyConfig {
        self.shared.phy
    }
    fn fast_path(&self) -> bool {
        self.shared.fast_path
    }
    fn n_nodes(&self) -> usize {
        self.shared.n
    }
    fn slot(&mut self, node: NodeId) -> &mut NodeSlot {
        let i = self.slot_index[node.index()] as usize;
        self.slots[i].1
    }
    fn slot_ref(&self, node: NodeId) -> &NodeSlot {
        let i = self.slot_index[node.index()] as usize;
        self.slots[i].1
    }
    fn have_faults(&self) -> bool {
        self.shared.faults.is_some()
    }
    fn node_down(&self, node: NodeId) -> bool {
        self.shared.faults.is_some_and(|f| f.node_down(node))
    }
    fn link_usable(&self, sender: NodeId, receiver: NodeId) -> bool {
        match self.shared.faults {
            Some(fs) => !fs.node_down(receiver) && !fs.link_severed(sender, receiver),
            None => true,
        }
    }
    fn rx_fate(&mut self, _sender: NodeId, _receiver: NodeId) -> RxFate {
        // Parallel windows never run with live impairments
        // (classification), so the sequential kernel would not have
        // drawn RNG either: `FaultState::rx_draw` consumes state only
        // for impaired links.
        RxFate::Deliver
    }
    fn in_range_into(&mut self, of: NodeId, out: &mut Vec<(NodeId, f64)>) {
        // Mirror of the sequential linear scan, reading positions from
        // the cached legs (bitwise equal by the leg promise); the
        // spatial grid is bitwise equal to the linear scan by its own
        // differential tests.
        out.clear();
        let p = self.shared.legs[of.index()].pos_at(self.now);
        let range_sq = self.shared.phy.range_m * self.shared.phy.range_m;
        let legs = self.shared.legs;
        let now = self.now;
        out.extend((0..self.shared.n as u16).map(NodeId).filter(|&m| m != of).filter_map(|m| {
            let d = legs[m.index()].pos_at(now).distance_sq(p);
            (d <= range_sq).then_some((m, d))
        }));
    }
    fn take_scratch(&mut self) -> Vec<(NodeId, f64)> {
        std::mem::take(&mut self.scratch)
    }
    fn put_scratch(&mut self, buf: Vec<(NodeId, f64)>) {
        self.scratch = buf;
    }
    fn schedule(&mut self, at: SimTime, event: Event) {
        debug_assert!(at >= self.now, "schedule into the past");
        if at < self.shared.w_end {
            // In-window child: execute locally, and record *where* in
            // the effect stream it was scheduled so replay can
            // re-create the sequential sequence-number allocation.
            let id = self.child_ctr;
            self.child_ctr += 1;
            self.effects.push(Effect::ScheduleChild { at, child: id });
            let idx = self.pending.len() as u32;
            self.pending.push(Some(PendingEv { event, start: StartKey::Child(id) }));
            self.heap.push(Reverse((at, CHILD_KEY_BASE + u64::from(id), idx)));
        } else {
            self.effects.push(Effect::ScheduleFel { at, event });
        }
    }
    fn emit(&mut self, event: TraceEvent) {
        self.effects.push(Effect::Emit(event));
    }
    fn bump_trace_events(&mut self) {
        self.effects.push(Effect::TraceBump);
    }
    fn trace_on(&self) -> bool {
        self.shared.trace_on
    }
    fn metric(&mut self, op: MetricOp) {
        self.effects.push(Effect::Metric(op));
    }
    fn store_batch(&mut self, tx_id: u64, receivers: Vec<NodeId>) {
        // Receptions started in-window end post-window, so the batch
        // belongs to the world's map, inserted at replay.
        self.effects.push(Effect::StoreBatch { tx_id, receivers });
    }
    fn take_batch(&mut self, tx_id: u64) -> Option<Vec<NodeId>> {
        self.batches.remove(&tx_id)
    }
    fn pool_pop(&mut self) -> Vec<NodeId> {
        self.pool.pop().unwrap_or_default()
    }
    fn pool_push(&mut self, buf: Vec<NodeId>) {
        self.pool.push(buf);
    }
    fn take_actions(&mut self) -> Vec<Action> {
        self.action_pool.take()
    }
    fn put_actions(&mut self, buf: Vec<Action>) {
        self.action_pool.put(buf);
    }
    fn after_protocol(&mut self) {
        // Every-event auditors force the sequential path (see
        // `plan_window`), so there is nothing to run here.
    }
}

/// Drains one component's local queue to empty.
fn run_component(task: CompTask<'_>, comp: u32, shared: Shared<'_>) -> CompResult {
    let mut shard = Shard {
        shared,
        now: SimTime::ZERO,
        slots: task.slots,
        slot_index: task.slot_index,
        scratch: Vec::new(),
        batches: task.batches,
        pool: Vec::new(),
        action_pool: VecPool::new(8),
        effects: Vec::new(),
        child_ctr: 0,
        heap: BinaryHeap::new(),
        pending: Vec::new(),
        records: Vec::new(),
    };
    for (t, key, event) in task.events {
        let idx = shard.pending.len() as u32;
        shard.pending.push(Some(PendingEv { event, start: StartKey::Drain(key) }));
        shard.heap.push(Reverse((t, key, idx)));
    }
    while let Some(Reverse((t, _key, idx))) = shard.heap.pop() {
        let Some(pev) = shard.pending[idx as usize].take() else { continue };
        shard.exec(t, pev);
    }
    let mut child_map = vec![usize::MAX; shard.child_ctr as usize];
    for (ri, rec) in shard.records.iter().enumerate() {
        if let StartKey::Child(id) = rec.start {
            child_map[id as usize] = ri;
        }
    }
    CompResult { comp, records: shard.records, child_map }
}

/// Pops the window's events, fans the components out over worker
/// threads, and replays the merged effect stream canonically.
fn run_window_parallel(
    world: &mut World,
    t0: SimTime,
    w_end: SimTime,
    cell: f64,
    plan: WindowPlan,
    legs: &[MotionLeg],
    workers: usize,
) {
    let k = plan.n_comps;
    let n = world.nodes.len();
    world.parallel_windows += 1;
    Kern::prof_enter(world, crate::prof::PHASE_PAR_BUILD);
    // Drain the window in canonical (t, seq) order; the drain index is
    // each event's replay key.
    let mut comp_events: Vec<Vec<(SimTime, u64, Event)>> = (0..k).map(|_| Vec::new()).collect();
    let mut comp_batches: Vec<BTreeMap<u64, Vec<NodeId>>> =
        (0..k).map(|_| BTreeMap::new()).collect();
    let mut drain: u64 = 0;
    while world.fel.peek_time().is_some_and(|t| t < w_end) {
        let Some((t, event)) = world.pop_event() else { break };
        let home = match &event {
            Event::MacKick(node)
            | Event::TxEnd { node, .. }
            | Event::RxEnd { node, .. }
            | Event::AckTimeout { node, .. }
            | Event::ProtocolTimer { node, .. } => *node,
            Event::RxEndBatch { tx_id } => NodeId((tx_id >> 48) as u16),
            // Excluded by `plan_window`; route to component 0, whose
            // shard will fail loudly if this ever regresses.
            _ => NodeId(0),
        };
        let comp = match plan.comp_of_cell.get(&cell_of(legs[home.index()].pos_at(t0), cell)) {
            Some(&c) => c as usize,
            None => {
                debug_assert!(false, "window event outside every footprint");
                0
            }
        };
        if let Event::RxEndBatch { tx_id } = &event {
            if let Some(b) = world.rx_batches.remove(tx_id) {
                comp_batches[comp].insert(*tx_id, b);
            }
        }
        comp_events[comp].push((t, drain, event));
        drain += 1;
    }
    if let Some(p) = world.prof.as_mut() {
        p.record_hist(crate::prof::HIST_WINDOW_SIZE, drain);
        p.record_hist(crate::prof::HIST_COMPONENT_COUNT, k as u64);
    }
    let trace_on = Kern::trace_on(world);
    let fast_path = world.cfg.spatial_grid;
    // Which component owns each node (u32::MAX: untouched this window).
    let owner: Vec<u32> = (0..n)
        .map(|i| {
            plan.comp_of_cell.get(&cell_of(legs[i].pos_at(t0), cell)).copied().unwrap_or(u32::MAX)
        })
        .collect();
    Kern::prof_exit(world); // par_build
    Kern::prof_enter(world, crate::prof::PHASE_PAR_EXECUTE);
    let mut results: Vec<CompResult> = {
        // Field-disjoint borrows of the world: exclusive node slots for
        // the shards, shared PHY/fault state alongside.
        let w = &mut *world;
        let phy = &w.cfg.phy;
        let faults = w.faults.as_ref();
        let shared = Shared { phy, faults, legs, fast_path, trace_on, n, w_end };
        let mut free: Vec<Option<&mut NodeSlot>> = w.nodes.iter_mut().map(Some).collect();
        let mut tasks: Vec<CompTask<'_>> = comp_events
            .into_iter()
            .zip(comp_batches)
            .map(|(events, batches)| CompTask {
                events,
                batches,
                slots: Vec::new(),
                slot_index: vec![u32::MAX; n],
            })
            .collect();
        for (i, slot) in free.iter_mut().enumerate() {
            let o = owner[i];
            if o != u32::MAX {
                if let Some(s) = slot.take() {
                    let task = &mut tasks[o as usize];
                    task.slot_index[i] = task.slots.len() as u32;
                    task.slots.push((i as u16, s));
                }
            }
        }
        let n_workers = workers.min(tasks.len()).max(1);
        let mut buckets: Vec<Vec<(u32, CompTask<'_>)>> =
            (0..n_workers).map(|_| Vec::new()).collect();
        for (ci, task) in tasks.into_iter().enumerate() {
            buckets[ci % n_workers].push((ci as u32, task));
        }
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for bucket in buckets {
                handles.push(scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(ci, task)| run_component(task, ci, shared))
                        .collect::<Vec<CompResult>>()
                }));
            }
            let mut out: Vec<CompResult> = Vec::new();
            for h in handles {
                match h.join() {
                    Ok(rs) => out.extend(rs),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            out
        })
    };
    Kern::prof_exit(world); // par_execute
    Kern::prof_enter(world, crate::prof::PHASE_PAR_REPLAY);
    results.sort_by_key(|r| r.comp);
    replay(world, results);
    Kern::prof_exit(world); // par_replay
}

/// Merges the components' records in canonical order and applies their
/// effects to the world.
///
/// Window events enter the merge keyed by their global drain index —
/// the order the sequential kernel would have popped them. When replay
/// encounters an in-window `ScheduleChild` effect, that is the moment
/// the sequential kernel would have pushed the child onto the FEL and
/// allocated its (strictly increasing) sequence number; re-keying the
/// child's record with the next replay counter reproduces exactly that
/// order, inductively for children of children. Metrics apply in
/// canonical order (bitwise `f64` equality with the sequential run),
/// trace sinks observe the canonical stream, and post-window schedules
/// enter the FEL in canonical relative order.
fn replay(world: &mut World, mut comps: Vec<CompResult>) {
    let mut heap: BinaryHeap<Reverse<(SimTime, u64, u32, u32)>> = BinaryHeap::new();
    for (ci, comp) in comps.iter().enumerate() {
        for (ri, rec) in comp.records.iter().enumerate() {
            if let StartKey::Drain(key) = rec.start {
                heap.push(Reverse((rec.t, key, ci as u32, ri as u32)));
            }
        }
    }
    let mut next_child_key = CHILD_KEY_BASE;
    while let Some(Reverse((t, _key, ci, ri))) = heap.pop() {
        let (kind, effects) = {
            let rec = &mut comps[ci as usize].records[ri as usize];
            (rec.kind, std::mem::take(&mut rec.effects))
        };
        world.replay_begin(t, kind);
        for effect in effects {
            match effect {
                Effect::Emit(e) => Kern::emit(world, e),
                Effect::TraceBump => Kern::bump_trace_events(world),
                Effect::Metric(op) => Kern::metric(world, op),
                Effect::ScheduleFel { at, event } => Kern::schedule(world, at, event),
                Effect::ScheduleChild { at, child } => {
                    let rec_idx = comps[ci as usize].child_map[child as usize];
                    heap.push(Reverse((at, next_child_key, ci, rec_idx as u32)));
                    next_child_key += 1;
                }
                Effect::StoreBatch { tx_id, receivers } => {
                    Kern::store_batch(world, tx_id, receivers);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::faults::{FaultAction, FaultPlan};
    use crate::geometry::Terrain;
    use crate::metrics::Metrics;
    use crate::mobility::{RandomWaypoint, StaticMobility};
    use crate::rng::SimRng;
    use crate::static_routing::StaticRouting;
    use crate::time::SimDuration;
    use crate::trace::{MemoryTrace, TraceEvent};
    use crate::world::World;
    use std::sync::{Arc, Mutex};

    /// Everything a run can observably produce.
    #[derive(Debug, PartialEq)]
    struct Observed {
        metrics: Metrics,
        events_executed: u64,
        trace_events: u64,
        trace: Vec<(SimTime, TraceEvent)>,
    }

    fn observe(mut world: World, sink: Arc<Mutex<MemoryTrace>>, secs: u64) -> (Observed, u64) {
        world.run_until(SimTime::ZERO + SimDuration::from_secs(secs));
        world.finalize();
        let pw = world.parallel_windows();
        let trace = sink.lock().unwrap().events().to_vec();
        (
            Observed {
                metrics: world.metrics().clone(),
                events_executed: world.events_executed(),
                trace_events: world.trace_events(),
                trace,
            },
            pw,
        )
    }

    /// Two five-node chains 3000 m apart (≥ 10 partition cells — far
    /// beyond the merge radius), with concurrent crossing CBR-style
    /// unicast traffic in both: windows where both clusters are on the
    /// air are exactly what the partitioner must fan out.
    fn two_cluster_world(
        workers: usize,
        plan: Option<FaultPlan>,
    ) -> (World, Arc<Mutex<MemoryTrace>>) {
        let spacing = 150.0;
        let gap = 3000.0;
        let positions: Vec<Position> = (0..5)
            .map(|i| Position::new(i as f64 * spacing, 0.0))
            .chain((0..5).map(|i| Position::new(gap + i as f64 * spacing, 0.0)))
            .collect();
        let adj: Vec<Vec<usize>> = (0..10)
            .map(|i| {
                let cluster = i / 5;
                let mut v = Vec::new();
                if i % 5 > 0 {
                    v.push(i - 1);
                }
                if i % 5 < 4 && (i + 1) / 5 == cluster {
                    v.push(i + 1);
                }
                v
            })
            .collect();
        let tables = StaticRouting::from_adjacency(&adj);
        let cfg = SimConfig {
            duration: SimDuration::from_secs(10),
            workers,
            fault_plan: plan,
            ..SimConfig::default()
        };
        let mut world = World::new(cfg, Box::new(StaticMobility::new(positions)), move |id, _| {
            Box::new(StaticRouting::new(id, tables.clone()))
        });
        let sink = MemoryTrace::shared();
        world.set_trace(Box::new(sink.clone()));
        // Concurrent crossing flows in both clusters: contention,
        // backoff, forwarding and ACK exchange on both sides of the
        // gap at overlapping instants.
        for k in 0..90u64 {
            let base = SimTime::from_millis(100 + k * 23);
            let us = SimDuration::from_micros;
            world.schedule_app_packet(base, NodeId(0), NodeId(2), 512);
            world.schedule_app_packet(base + us(40), NodeId(4), NodeId(2), 512);
            world.schedule_app_packet(base + us(80), NodeId(5), NodeId(7), 512);
            world.schedule_app_packet(base + us(120), NodeId(9), NodeId(7), 512);
            world.schedule_app_packet(base + us(2500), NodeId(2), NodeId(0), 512);
            world.schedule_app_packet(base + us(2540), NodeId(7), NodeId(9), 512);
        }
        (world, sink)
    }

    #[test]
    fn two_cluster_world_engages_the_parallel_path() {
        let (world, sink) = two_cluster_world(2, None);
        let (_, pw) = observe(world, sink, 3);
        assert!(pw > 0, "no window parallelised — the straddle test is vacuous");
    }

    #[test]
    fn parallel_runs_are_byte_identical_across_worker_counts() {
        let (world, sink) = two_cluster_world(1, None);
        let (base, pw) = observe(world, sink, 3);
        assert_eq!(pw, 0, "sequential runs must never fan out");
        assert!(base.metrics.data_delivered > 0, "silent run proves nothing");
        assert!(!base.trace.is_empty(), "no trace emitted");
        for workers in [2, 4, 8] {
            let (world, sink) = two_cluster_world(workers, None);
            let (got, pw) = observe(world, sink, 3);
            assert!(pw > 0, "workers={workers}: parallel path never engaged");
            assert_eq!(got, base, "workers={workers} diverged from sequential");
        }
    }

    #[test]
    fn crash_and_partition_fault_plans_replay_identically_in_parallel() {
        // Crash/restart and partition faults (no impairments, which
        // force sequential windows anyway): node-down state is frozen
        // during parallel windows and the Fault/Reboot events
        // themselves run sequentially.
        let plan = || {
            FaultPlan::new(vec![
                (
                    SimTime::from_millis(600),
                    FaultAction::CrashRestart {
                        node: NodeId(1),
                        downtime: SimDuration::from_millis(400),
                    },
                ),
                (
                    SimTime::from_millis(900),
                    FaultAction::Partition { group: (0..5).map(NodeId).collect() },
                ),
                (
                    SimTime::from_millis(1600),
                    FaultAction::CrashRestart {
                        node: NodeId(8),
                        downtime: SimDuration::from_millis(300),
                    },
                ),
                (SimTime::from_millis(2000), FaultAction::Heal),
            ])
        };
        let (world, sink) = two_cluster_world(1, Some(plan()));
        let (base, _) = observe(world, sink, 3);
        for workers in [2, 8] {
            let (world, sink) = two_cluster_world(workers, Some(plan()));
            let (got, pw) = observe(world, sink, 3);
            assert!(pw > 0, "workers={workers}: faulted run never parallelised");
            assert_eq!(got, base, "workers={workers} faulted run diverged");
        }
    }

    /// A mobile sparse world: random-waypoint motion over a wide
    /// terrain, static chain tables (stale routes — exactly the retry /
    /// ACK-timeout-heavy workload that stresses the window machinery,
    /// plus motion-leg refreshes every window).
    fn mobile_world(workers: usize, seed: u64) -> (World, Arc<Mutex<MemoryTrace>>) {
        let n = 40usize;
        let tables = StaticRouting::tables_for_line(n);
        let cfg = SimConfig {
            duration: SimDuration::from_secs(10),
            seed,
            workers,
            ..SimConfig::default()
        };
        let mobility = RandomWaypoint::new(
            n,
            Terrain::new(6000.0, 400.0),
            SimDuration::from_secs(0),
            1.0,
            20.0,
            SimRng::stream(seed, "mobility"),
        );
        let mut world = World::new(cfg, Box::new(mobility), move |id, _| {
            Box::new(StaticRouting::new(id, tables.clone()))
        });
        let sink = MemoryTrace::shared();
        world.set_trace(Box::new(sink.clone()));
        let mut rng = SimRng::stream(seed, "parallel-test-traffic");
        for k in 0..160u64 {
            let src = NodeId(rng.below(n as u64) as u16);
            let mut dst = NodeId(rng.below(n as u64) as u16);
            if dst == src {
                dst = NodeId((dst.0 + 1) % n as u16);
            }
            let at = SimTime::from_millis(100 + k * 17);
            world.schedule_app_packet(at, src, dst, 512);
        }
        (world, sink)
    }

    #[test]
    fn mobile_sparse_runs_are_identical_for_every_worker_count() {
        for seed in [11u64, 23] {
            let (world, sink) = mobile_world(1, seed);
            let (base, _) = observe(world, sink, 4);
            assert!(base.events_executed > 1000, "seed {seed}: run too quiet");
            for workers in [2, 4] {
                let (world, sink) = mobile_world(workers, seed);
                let (got, _) = observe(world, sink, 4);
                assert_eq!(got, base, "seed {seed} workers={workers} diverged");
            }
        }
    }
}
