//! The discrete-event simulation kernel.
//!
//! [`World`] owns the nodes (MAC + routing protocol instances), the
//! future event list, the radio medium, mobility, CBR traffic and
//! metrics, and advances simulated time by executing events in
//! timestamp order. All randomness is drawn from named sub-streams of
//! the run seed, so a `(configuration, seed)` pair replays exactly.

use crate::audit::{ForensicReport, InvariantAuditor};
use crate::config::SimConfig;
use crate::event::{Event, EventQueue};
use crate::faults::{FaultAction, FaultState, RxFate};
use crate::loopcheck::{find_loops, LoopViolation};
use crate::mac::{Mac, MacState, OutFrame, RetryVerdict};
use crate::metrics::Metrics;
use crate::mobility::MobilityModel;
use crate::packet::{ControlKind, DataPacket, NodeId, Packet, PacketBody, DEFAULT_DATA_TTL};
use crate::protocol::{Action, Ctx, DropReason, RoutingProtocol};
use crate::rng::SimRng;
use crate::spatial::NeighborGrid;
use crate::telemetry::{FlightEntry, FlightRecorder, SampleBaseline, SeriesSample};
use crate::time::{SimDuration, SimTime};
use crate::trace::{FaultKind, TraceEvent, TraceSink};
use crate::traffic::{FlowState, TrafficConfig};
use std::cell::RefCell;
use std::collections::{HashSet, VecDeque};
use std::rc::Rc;

/// Link-layer frame payload.
#[derive(Clone, Debug)]
enum FramePayload {
    /// A network-layer packet.
    Packet(Packet),
    /// A link-layer acknowledgement for transmission `acked_tx`.
    Ack { acked_tx: u64 },
}

/// A link-layer frame on the air.
#[derive(Clone, Debug)]
struct Frame {
    src: NodeId,
    /// `None` is a link broadcast.
    dst: Option<NodeId>,
    payload: FramePayload,
}

/// A reception in progress at one node.
///
/// The frame is shared (`Rc`) across every receiver of one
/// transmission: at 100-node scale a broadcast reaches dozens of
/// stations, and deep-cloning the packet per receiver dominated
/// `propagate`'s cost.
#[derive(Clone, Debug)]
struct RxInProgress {
    tx_id: u64,
    frame: Rc<Frame>,
    end: SimTime,
    corrupted: bool,
    /// Transmitter-to-receiver distance, for the capture model.
    sender_dist: f64,
}

/// Deterministic avalanche hasher for `u64` keys (splitmix64 finalizer).
/// The default `HashSet` hasher is SipHash, whose per-insert cost is
/// measurable at paper scale; uids need no DoS resistance, and the
/// sets hashed with this are only ever probed, never iterated, so the
/// swap cannot perturb determinism.
#[derive(Clone, Copy, Debug, Default)]
struct U64Hasher {
    hash: u64,
}

impl std::hash::Hasher for U64Hasher {
    fn finish(&self) -> u64 {
        self.hash
    }
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (FNV-1a); the u64 fast path below is the one
        // the uid sets actually exercise.
        for &b in bytes {
            self.hash = (self.hash ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    fn write_u64(&mut self, x: u64) {
        let mut h = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.hash = h ^ (h >> 31);
    }
}

type U64Build = std::hash::BuildHasherDefault<U64Hasher>;

/// Bounded remember-set for MAC-level duplicate suppression.
#[derive(Debug, Default)]
struct RecentCache {
    order: VecDeque<u64>,
    set: HashSet<u64, U64Build>,
}

impl RecentCache {
    /// Inserts a uid; returns `false` if it was already present.
    fn insert(&mut self, uid: u64) -> bool {
        if !self.set.insert(uid) {
            return false;
        }
        self.order.push_back(uid);
        if self.order.len() > 128 {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        true
    }
}

struct NodeSlot {
    mac: Mac,
    protocol: Box<dyn RoutingProtocol>,
    proto_rng: SimRng,
    rx: Vec<RxInProgress>,
    recent: RecentCache,
}

/// A manually injected application packet (tests and examples).
#[derive(Clone, Debug)]
struct AppPacket {
    src: NodeId,
    dst: NodeId,
    payload_len: u16,
    flow_id: u32,
    seq: u32,
}

/// Flow ids at or above this value belong to manually injected packets.
const MANUAL_FLOW_BASE: u32 = 1 << 31;

/// The simulator.
pub struct World {
    cfg: SimConfig,
    mobility: Box<dyn MobilityModel>,
    nodes: Vec<NodeSlot>,
    fel: EventQueue,
    now: SimTime,
    next_uid: u64,
    next_tx_id: u64,
    metrics: Metrics,
    traffic_cfg: Option<TrafficConfig>,
    flows: Vec<FlowState>,
    next_flow_id: u32,
    traffic_rng: SimRng,
    manual: Vec<AppPacket>,
    next_manual_flow: u32,
    trace: Option<Box<dyn TraceSink>>,
    auditor: Option<InvariantAuditor>,
    /// Runtime state of the executing fault plan, if one is installed.
    faults: Option<FaultState>,
    /// Last control frame each node put on the air (kept only while a
    /// fault plan is installed, for stale-advert replay injection).
    last_control: Vec<Option<Frame>>,
    /// Spatial neighbor index ([`crate::spatial`]); present when
    /// [`SimConfig::spatial_grid`] is on and the mobility model
    /// promises a finite speed bound. `RefCell` because range queries
    /// are logically read-only ([`World::neighbors`] takes `&self`)
    /// but advance the index's cache epoch.
    grid: Option<RefCell<NeighborGrid>>,
    /// Events executed so far (perf telemetry; deliberately *not* part
    /// of [`Metrics`] — the fast path elides provably no-op events, so
    /// this count may differ between byte-identical runs).
    events_executed: u64,
    /// Events executed so far, by kind ([`Event::KIND_NAMES`] order) —
    /// snapshotted into every telemetry sample. Like
    /// `events_executed`, not part of [`Metrics`].
    dispatch_counts: [u64; Event::KIND_COUNT],
    /// Routing-decision trace events emitted by protocols. A *World*
    /// field, deliberately not part of [`Metrics`]: protocols only
    /// emit when a sink, auditor or flight recorder is attached, so a
    /// metrics-resident count would break the rule that attaching
    /// telemetry changes nothing observable.
    trace_events: u64,
    /// Bounded per-node rings of recent trace events
    /// ([`SimConfig::telemetry`]); dumped into the forensic report at
    /// the first invariant breach.
    recorder: Option<FlightRecorder>,
    /// Time-series samples taken at `TelemetrySample` events.
    series: Vec<SeriesSample>,
    /// Cumulative-counter baseline of the previous sample.
    sample_base: SampleBaseline,
    /// Reusable buffer for [`World::in_range_into`] answers on the hot
    /// `propagate` path (taken and returned with `mem::take`).
    range_scratch: Vec<(NodeId, f64)>,
    /// Fast-path pending receiver lists, indexed by transmission id:
    /// ring slot `i` holds the in-range receivers of transmission
    /// `rx_batch_base + i`, in the ascending order their per-receiver
    /// `RxEnd` events would have been scheduled (consumed by
    /// [`Event::RxEndBatch`]). An empty slot means nothing pending —
    /// batches are only ever stored non-empty. Transmission ids are
    /// issued sequentially and frames are on the air for milliseconds,
    /// so the ring stays a few dozen slots wide.
    rx_batches: VecDeque<Vec<NodeId>>,
    /// Transmission id of ring slot 0.
    rx_batch_base: u64,
    /// Spare receiver-list allocations recycled across batches.
    batch_pool: Vec<Vec<NodeId>>,
    /// First routing loop the auditor found, if any.
    pub first_loop: Option<LoopViolation>,
}

impl World {
    /// Builds a world with one protocol instance per mobility-model node.
    ///
    /// The factory is called once per node with `(node, n_nodes)`.
    ///
    /// # Panics
    ///
    /// Panics if the mobility model covers zero nodes.
    pub fn new<F>(cfg: SimConfig, mobility: Box<dyn MobilityModel>, mut factory: F) -> Self
    where
        F: FnMut(NodeId, usize) -> Box<dyn RoutingProtocol>,
    {
        let n = mobility.len();
        assert!(n > 0, "world needs at least one node");
        assert!(n <= u16::MAX as usize, "too many nodes");
        let seed = cfg.seed;
        let nodes = (0..n)
            .map(|i| {
                let id = NodeId(i as u16);
                NodeSlot {
                    mac: Mac::new(cfg.phy.cw_min, SimRng::stream(seed, &format!("mac-{i}"))),
                    protocol: factory(id, n),
                    proto_rng: SimRng::stream(seed, &format!("proto-{i}")),
                    rx: Vec::new(),
                    recent: RecentCache::default(),
                }
            })
            .collect();
        let auditor = cfg.invariant_audit.then(InvariantAuditor::new);
        let recorder = cfg
            .telemetry
            .as_ref()
            .filter(|t| t.flight_recorder_depth > 0)
            .map(|t| FlightRecorder::new(n, t.flight_recorder_depth));
        let last_control = vec![None; n];
        // The spatial index needs a finite speed bound to size its
        // query slack; models that promise none fall back to the
        // linear scan (the answers are identical either way).
        let grid = cfg
            .spatial_grid
            .then(|| mobility.max_speed_mps())
            .flatten()
            .filter(|v| v.is_finite() && *v >= 0.0)
            .map(|v_max| RefCell::new(NeighborGrid::new(n, cfg.phy.range_m, v_max)));
        let mut world = World {
            traffic_rng: SimRng::stream(seed, "traffic"),
            cfg,
            mobility,
            nodes,
            fel: EventQueue::new(),
            now: SimTime::ZERO,
            next_uid: 1,
            next_tx_id: 1,
            metrics: Metrics::new(),
            traffic_cfg: None,
            flows: Vec::new(),
            next_flow_id: 0,
            manual: Vec::new(),
            next_manual_flow: MANUAL_FLOW_BASE,
            trace: None,
            auditor,
            faults: None,
            last_control,
            grid,
            events_executed: 0,
            dispatch_counts: [0; Event::KIND_COUNT],
            trace_events: 0,
            recorder,
            series: Vec::new(),
            sample_base: SampleBaseline::default(),
            range_scratch: Vec::new(),
            rx_batches: VecDeque::new(),
            rx_batch_base: 0,
            batch_pool: Vec::new(),
            first_loop: None,
        };
        if let Some(interval) = world.cfg.audit_interval {
            world.fel.schedule(SimTime::ZERO + interval, Event::Audit);
        }
        // The sampler's events consume FEL sequence numbers, but seq
        // allocation is monotone, so the relative order of all *other*
        // events is unchanged — sampling cannot perturb the run (its
        // handler draws no randomness and schedules only its successor).
        if let Some(interval) = world.cfg.telemetry.as_ref().and_then(|t| t.sample_interval) {
            world.fel.schedule(SimTime::ZERO + interval, Event::TelemetrySample);
        }
        if let Some(plan) = world.cfg.fault_plan.clone() {
            for (i, (at, _)) in plan.entries().iter().enumerate() {
                world.fel.schedule(*at, Event::Fault { idx: i as u32 });
            }
            world.faults = Some(FaultState::new(plan, n, SimRng::stream(seed, "faults")));
        }
        for i in 0..n {
            world.call_protocol(NodeId(i as u16), |p, ctx| p.start(ctx));
        }
        world
    }

    /// Attaches the CBR workload (call before [`World::run`]).
    ///
    /// A world with fewer than two nodes cannot host a two-endpoint
    /// flow — the `src != dst` rejection sampling in flow setup could
    /// never terminate — so flow creation is skipped entirely and the
    /// run carries no traffic.
    pub fn with_cbr(&mut self, tcfg: TrafficConfig) {
        if self.nodes.len() < 2 {
            return;
        }
        for slot in 0..tcfg.n_flows {
            let start = SimTime::ZERO
                + SimDuration::from_nanos(
                    self.traffic_rng.below(tcfg.start_window.as_nanos().max(1)),
                );
            let Some(state) = self.fresh_flow(&tcfg, start) else { return };
            self.flows.push(state);
            self.fel.schedule(start, Event::FlowPacket { flow: slot as u32 });
            self.fel.schedule(self.flows[slot].ends_at, Event::FlowEnd { flow: slot as u32 });
        }
        self.traffic_cfg = Some(tcfg);
    }

    /// Draws a new flow's endpoints and lifetime, or `None` when no
    /// valid `src != dst` pair exists (single-node world) — the guard
    /// that keeps the rejection-sampling loop below total.
    fn fresh_flow(&mut self, tcfg: &TrafficConfig, now: SimTime) -> Option<FlowState> {
        let n = self.nodes.len() as u64;
        if n < 2 {
            return None;
        }
        let src = self.traffic_rng.below(n) as u16;
        let mut dst = self.traffic_rng.below(n) as u16;
        while dst == src {
            dst = self.traffic_rng.below(n) as u16;
        }
        let life = SimDuration::from_secs_f64(self.traffic_rng.exponential(tcfg.mean_flow_secs));
        let flow_id = self.next_flow_id;
        self.next_flow_id += 1;
        Some(FlowState { flow_id, src, dst, next_seq: 0, ends_at: now + life })
    }

    /// Schedules a single application packet from `src` to `dst` at
    /// time `at` (for tests and worked examples). Returns the flow id
    /// used in metrics.
    pub fn schedule_app_packet(
        &mut self,
        at: SimTime,
        src: NodeId,
        dst: NodeId,
        payload_len: u16,
    ) -> u32 {
        let flow_id = self.next_manual_flow;
        self.next_manual_flow += 1;
        let idx = self.manual.len() as u32;
        self.manual.push(AppPacket { src, dst, payload_len, flow_id, seq: 0 });
        self.fel.schedule(at, Event::AppSend { idx });
        flow_id
    }

    /// Attaches a trace sink receiving both packet-lifecycle and
    /// routing-decision events (see [`crate::trace`]). Attaching a sink
    /// enables protocol-side emission for subsequent callbacks.
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    fn emit(&mut self, event: TraceEvent) {
        if let Some(r) = self.recorder.as_mut() {
            r.record(self.now, &event);
        }
        if let Some(a) = self.auditor.as_mut() {
            a.observe(self.now, &event);
        }
        if let Some(t) = self.trace.as_mut() {
            t.record(self.now, event);
        }
    }

    /// The every-mutation auditor's first-violation forensic report, if
    /// [`SimConfig::invariant_audit`] is on and a breach occurred.
    /// Retrieve after [`World::run_until`]/[`World::finalize`] (the
    /// consuming [`World::run`] drops the world).
    pub fn forensic_report(&self) -> Option<&ForensicReport> {
        self.auditor.as_ref().and_then(|a| a.report())
    }

    /// Schedules a crash-and-restart of `node` at time `at`: its MAC
    /// queue and in-progress receptions are discarded and the routing
    /// protocol's [`RoutingProtocol::handle_reboot`] hook runs.
    pub fn schedule_reboot(&mut self, at: SimTime, node: NodeId) {
        self.fel.schedule(at, Event::Reboot { node });
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The metrics gathered so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Read-only access to a node's protocol instance.
    pub fn protocol(&self, node: NodeId) -> &dyn RoutingProtocol {
        self.nodes[node.index()].protocol.as_ref()
    }

    /// Whether a frame from `sender` can reach `receiver` as far as the
    /// fault layer is concerned: the receiver is up and the link is not
    /// administratively severed. The *single* reachability predicate
    /// shared by [`World::propagate`] and [`World::neighbors`], so the
    /// radio model and the neighbor view cannot drift apart.
    fn link_usable(&self, sender: NodeId, receiver: NodeId) -> bool {
        match self.faults.as_ref() {
            Some(fs) => !fs.node_down(receiver) && !fs.link_severed(sender, receiver),
            None => true,
        }
    }

    /// Every node within radio range of `of` at the current time
    /// (excluding `of`), ascending, with exact squared distances —
    /// answered by the spatial index when enabled, by the linear scan
    /// otherwise. The two paths are bitwise identical (same set, same
    /// order, same distances); faults are *not* applied here.
    fn in_range_into(&self, of: NodeId, out: &mut Vec<(NodeId, f64)>) {
        let now = self.now;
        if let Some(grid) = self.grid.as_ref() {
            grid.borrow_mut().query_into(self.mobility.as_ref(), of, now, out);
            return;
        }
        out.clear();
        let p = self.mobility.position(of, now);
        let range_sq = self.cfg.phy.range_m * self.cfg.phy.range_m;
        out.extend((0..self.nodes.len() as u16).map(NodeId).filter(|&m| m != of).filter_map(|m| {
            let d = self.mobility.position(m, now).distance_sq(p);
            (d <= range_sq).then_some((m, d))
        }));
    }

    /// Node indices currently within radio range of `node` *and*
    /// reachable under the fault layer — crashed nodes and severed
    /// links are excluded exactly as [`World::propagate`] excludes
    /// them, and a crashed node sees no neighbors at all.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        if self.faults.as_ref().is_some_and(|fs| fs.node_down(node)) {
            return Vec::new();
        }
        let mut buf = Vec::new();
        self.in_range_into(node, &mut buf);
        buf.into_iter().map(|(m, _)| m).filter(|&m| self.link_usable(node, m)).collect()
    }

    /// Events the kernel has executed so far (perf telemetry; see the
    /// field note — intentionally not part of [`Metrics`]).
    pub fn events_executed(&self) -> u64 {
        self.events_executed
    }

    /// Routing-decision trace events emitted by protocols so far.
    /// Intentionally not part of [`Metrics`]: protocols emit only when
    /// a sink, auditor or flight recorder is attached.
    pub fn trace_events(&self) -> u64 {
        self.trace_events
    }

    /// The flight recorder's merged dump (all nodes' retained rings in
    /// global emission order); empty when no recorder is configured.
    pub fn flight_dump(&self) -> Vec<FlightEntry> {
        self.recorder.as_ref().map(|r| r.dump()).unwrap_or_default()
    }

    /// Time-series samples collected so far (one per elapsed
    /// [`crate::telemetry::TelemetryConfig::sample_interval`]).
    /// Retrieve after [`World::run_until`]; the consuming
    /// [`World::run`] drops the world.
    pub fn telemetry_series(&self) -> &[SeriesSample] {
        &self.series
    }

    /// The configured sampling interval, if the sampler is on.
    pub fn sample_interval(&self) -> Option<SimDuration> {
        self.cfg.telemetry.as_ref().and_then(|t| t.sample_interval)
    }

    /// Runs the loop auditor immediately; records and returns any
    /// violations.
    pub fn audit_now(&mut self) -> Vec<LoopViolation> {
        let tables: Vec<Vec<(NodeId, NodeId)>> =
            self.nodes.iter().map(|s| s.protocol.route_successors()).collect();
        let violations = find_loops(&tables);
        self.metrics.loop_violations += violations.len() as u64;
        if self.first_loop.is_none() {
            self.first_loop = violations.first().cloned();
        }
        violations
    }

    /// Runs the simulation to `cfg.duration` and returns the metrics.
    pub fn run(mut self) -> Metrics {
        let end = SimTime::ZERO + self.cfg.duration;
        self.run_until(end);
        self.finalize();
        self.metrics
    }

    /// Processes all events with timestamp ≤ `until`, then sets the
    /// clock to `until`. Useful for staged examples.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.fel.peek_time() {
            if t > until {
                break;
            }
            let Some((t, event)) = self.fel.pop() else { break };
            debug_assert!(t >= self.now, "event from the past");
            self.now = t;
            self.events_executed += 1;
            self.dispatch_counts[event.kind_index()] += 1;
            self.dispatch(event);
        }
        self.now = until;
    }

    /// Final bookkeeping: per-node MAC counters, mean own sequence
    /// number, run length.
    pub fn finalize(&mut self) {
        self.metrics.ifq_drops = self.nodes.iter().map(|s| s.mac.ifq_drops).sum();
        self.metrics.mac_retry_failures = self.nodes.iter().map(|s| s.mac.retry_failures).sum();
        let mut sum = 0.0;
        let mut count = 0u64;
        for s in &self.nodes {
            if let Some(v) = s.protocol.own_seqno_value() {
                sum += v;
                count += 1;
            }
        }
        self.metrics.mean_own_seqno = if count > 0 { sum / count as f64 } else { 0.0 };
        self.metrics.sim_seconds = self.now.as_secs_f64();
    }

    /// Consumes the world and returns the metrics (after
    /// [`World::finalize`]).
    pub fn into_metrics(mut self) -> Metrics {
        self.finalize();
        self.metrics
    }

    // ----- event dispatch -------------------------------------------------

    fn dispatch(&mut self, event: Event) {
        // A crashed node is silent: its MAC, reception and timer events
        // are swallowed until the fault layer restarts it. A protocol
        // timer firing while the node is down is permanently lost —
        // honest state loss; `handle_reboot` must re-arm what it needs.
        if let Some(fs) = self.faults.as_ref() {
            let gated = match event {
                Event::MacKick(node)
                | Event::TxEnd { node, .. }
                | Event::RxEnd { node, .. }
                | Event::AckTimeout { node, .. }
                | Event::ProtocolTimer { node, .. }
                | Event::Reboot { node } => fs.node_down(node),
                _ => false,
            };
            if gated {
                return;
            }
        }
        match event {
            Event::MacKick(node) => self.mac_kick(node),
            Event::TxEnd { node, tx_id } => self.on_tx_end(node, tx_id),
            Event::RxEnd { node, tx_id } => self.on_rx_end(node, tx_id),
            Event::RxEndBatch { tx_id } => self.on_rx_end_batch(tx_id),
            Event::AckTimeout { node, tx_id } => self.on_ack_timeout(node, tx_id),
            Event::ProtocolTimer { node, token } => {
                self.call_protocol(node, |p, ctx| p.handle_timer(ctx, token));
            }
            Event::FlowPacket { flow } => self.on_flow_packet(flow),
            Event::FlowEnd { flow } => self.on_flow_end(flow),
            Event::AppSend { idx } => self.on_app_send(idx),
            Event::Reboot { node } => {
                let phy = self.cfg.phy.clone();
                {
                    let slot = &mut self.nodes[node.index()];
                    slot.mac.queue.clear();
                    slot.mac.state = MacState::Idle;
                    slot.mac.reset_cw(&phy);
                    slot.rx.clear();
                }
                self.call_protocol(node, |p, ctx| p.handle_reboot(ctx));
            }
            Event::Fault { idx } => self.on_fault(idx),
            Event::FaultRestart { node } => self.on_fault_restart(node),
            Event::Audit => {
                self.audit_now();
                if let Some(interval) = self.cfg.audit_interval {
                    let next = self.now + interval;
                    if next <= SimTime::ZERO + self.cfg.duration {
                        self.fel.schedule(next, Event::Audit);
                    }
                }
            }
            Event::TelemetrySample => {
                self.take_sample();
                if let Some(interval) = self.cfg.telemetry.as_ref().and_then(|t| t.sample_interval)
                {
                    let next = self.now + interval;
                    if next <= SimTime::ZERO + self.cfg.duration {
                        self.fel.schedule(next, Event::TelemetrySample);
                    }
                }
            }
        }
    }

    /// Snapshots one time-series sample. Strictly read-only with
    /// respect to simulation state: it touches metrics, route tables
    /// and queue depths, draws no randomness and mutates only the
    /// telemetry side (series, baseline).
    fn take_sample(&mut self) {
        let m = &self.metrics;
        let delivered = m.data_delivered;
        let originated = m.data_originated;
        let mut control_tx = [0u64; ControlKind::ALL.len()];
        for (i, k) in ControlKind::ALL.iter().enumerate() {
            control_tx[i] = m.control_tx.get(k).copied().unwrap_or(0);
        }
        let mut drops = [0u64; DropReason::ALL.len()];
        for (i, r) in DropReason::ALL.iter().enumerate() {
            drops[i] = m.drops.get(r).copied().unwrap_or(0);
        }
        let mut route_entries = 0u64;
        let mut route_valid = 0u64;
        for s in &self.nodes {
            let t = s.protocol.telemetry_snapshot();
            route_entries += t.entries;
            route_valid += t.valid;
        }
        let base = self.sample_base;
        let mut control_tx_w = [0u64; ControlKind::ALL.len()];
        for (w, (cur, prev)) in
            control_tx_w.iter_mut().zip(control_tx.iter().zip(base.control_tx.iter()))
        {
            *w = cur.saturating_sub(*prev);
        }
        self.sample_base = SampleBaseline { delivered, originated, control_tx };
        self.series.push(SeriesSample {
            at: self.now,
            delivered,
            originated,
            delivered_w: delivered.saturating_sub(base.delivered),
            originated_w: originated.saturating_sub(base.originated),
            control_tx_w,
            drops,
            route_entries,
            route_valid,
            fel_depth: self.fel.len() as u64,
            events_by_kind: self.dispatch_counts,
        });
    }

    // ----- fault injection ------------------------------------------------

    /// Applies the fault plan's entry `idx` (scheduled at world
    /// construction; see [`crate::faults`]).
    fn on_fault(&mut self, idx: u32) {
        let Some(action) = self.faults.as_ref().and_then(|fs| fs.action(idx as usize)).cloned()
        else {
            return;
        };
        self.metrics.faults_injected += 1;
        match action {
            FaultAction::CrashRestart { node, downtime } => {
                let crashed = self.faults.as_mut().is_some_and(|fs| fs.set_down(node));
                if !crashed {
                    return; // already down: a double crash is inert
                }
                self.emit(TraceEvent::FaultInjected { node, kind: FaultKind::Crash });
                self.crash_node(node);
                self.fel.schedule(self.now + downtime, Event::FaultRestart { node });
            }
            FaultAction::LinkDown { a, b } => {
                if let Some(fs) = self.faults.as_mut() {
                    fs.sever_link(a, b);
                }
                self.emit(TraceEvent::FaultInjected { node: a, kind: FaultKind::LinkDown });
            }
            FaultAction::LinkUp { a, b } => {
                if let Some(fs) = self.faults.as_mut() {
                    fs.restore_link(a, b);
                }
                self.emit(TraceEvent::FaultInjected { node: a, kind: FaultKind::LinkUp });
            }
            FaultAction::Partition { group } => {
                if let Some(fs) = self.faults.as_mut() {
                    fs.set_partition(&group);
                }
                let node = group.first().copied().unwrap_or(NodeId(0));
                self.emit(TraceEvent::FaultInjected { node, kind: FaultKind::Partition });
            }
            FaultAction::Heal => {
                if let Some(fs) = self.faults.as_mut() {
                    fs.heal();
                }
                self.emit(TraceEvent::FaultInjected { node: NodeId(0), kind: FaultKind::Heal });
            }
            FaultAction::LinkImpair { a, b, loss_ppm, corrupt_ppm } => {
                if let Some(fs) = self.faults.as_mut() {
                    fs.set_impairment(a, b, loss_ppm, corrupt_ppm);
                }
                self.emit(TraceEvent::FaultInjected { node: a, kind: FaultKind::Impair });
            }
            FaultAction::ReplayLastControl { node } => {
                if self.faults.as_ref().is_some_and(|fs| fs.node_down(node)) {
                    return;
                }
                let Some(mut frame) = self.last_control[node.index()].clone() else {
                    return; // nothing sent yet
                };
                // Fresh uid so MAC-level duplicate suppression does not
                // swallow the replay; protocols must reject the stale
                // content on their own (LDR: NDC, AODV: seen-cache).
                if let FramePayload::Packet(p) = &mut frame.payload {
                    p.uid = self.next_uid;
                    self.next_uid += 1;
                }
                let dur = match &frame.payload {
                    FramePayload::Packet(p) => self.cfg.phy.tx_duration(p.wire_size()),
                    FramePayload::Ack { .. } => self.cfg.phy.ack_duration(),
                };
                let tx_id = self.next_tx_id;
                self.next_tx_id += 1;
                self.emit(TraceEvent::FaultInjected { node, kind: FaultKind::Replay });
                self.propagate(node, frame, tx_id, dur);
            }
        }
    }

    /// Silences a crashing node: wipes its MAC queue and state, its
    /// in-progress receptions and its duplicate cache, and truncates
    /// any frame it was mid-transmission on (receivers see a corrupted
    /// tail).
    fn crash_node(&mut self, node: NodeId) {
        let phy = self.cfg.phy.clone();
        {
            let slot = &mut self.nodes[node.index()];
            slot.mac.queue.clear();
            slot.mac.state = MacState::Idle;
            slot.mac.ack_busy_until = SimTime::ZERO;
            slot.mac.reset_cw(&phy);
            slot.rx.clear();
            slot.recent = RecentCache::default();
        }
        let now = self.now;
        for m in 0..self.nodes.len() {
            if m == node.index() {
                continue;
            }
            for rx in &mut self.nodes[m].rx {
                if rx.frame.src == node && rx.end > now {
                    rx.corrupted = true;
                }
            }
        }
    }

    /// Brings a crashed node back up with total state loss and runs the
    /// protocol's restart callback.
    fn on_fault_restart(&mut self, node: NodeId) {
        let restarted = self.faults.as_mut().is_some_and(|fs| fs.set_up(node));
        if !restarted {
            return;
        }
        self.metrics.node_restarts += 1;
        let phy = self.cfg.phy.clone();
        {
            let slot = &mut self.nodes[node.index()];
            slot.mac.state = MacState::Idle;
            slot.mac.reset_cw(&phy);
            slot.rx.clear();
        }
        // Emit the restart before the callback runs: the invariant
        // auditor drops the lost incarnation's fd baselines on this
        // event, so the rebuilt table is judged as a fresh start.
        self.emit(TraceEvent::NodeRestarted { node });
        self.call_protocol(node, |p, ctx| p.handle_reboot(ctx));
    }

    // ----- traffic --------------------------------------------------------

    fn on_flow_packet(&mut self, slot: u32) {
        let Some(tcfg) = self.traffic_cfg.clone() else { return };
        let end = SimTime::ZERO + self.cfg.duration;
        let flow = &mut self.flows[slot as usize];
        if self.now >= flow.ends_at || self.now >= end {
            return;
        }
        let data = DataPacket {
            src: NodeId(flow.src),
            dst: NodeId(flow.dst),
            flow: flow.flow_id,
            seq: flow.next_seq,
            created: self.now,
            payload_len: tcfg.payload_len,
            ttl: DEFAULT_DATA_TTL,
            ext: Vec::new(),
        };
        flow.next_seq += 1;
        let src = NodeId(flow.src);
        let next_at = self.now + tcfg.packet_interval();
        if next_at < flow.ends_at && next_at < end {
            self.fel.schedule(next_at, Event::FlowPacket { flow: slot });
        }
        self.metrics.data_originated += 1;
        self.call_protocol(src, |p, ctx| p.handle_data_origination(ctx, data));
    }

    fn on_flow_end(&mut self, slot: u32) {
        let Some(tcfg) = self.traffic_cfg.clone() else { return };
        let end = SimTime::ZERO + self.cfg.duration;
        if self.now >= end {
            return;
        }
        let Some(state) = self.fresh_flow(&tcfg, self.now) else { return };
        let ends_at = state.ends_at;
        self.flows[slot as usize] = state;
        self.fel.schedule(self.now, Event::FlowPacket { flow: slot });
        if ends_at < end {
            self.fel.schedule(ends_at, Event::FlowEnd { flow: slot });
        }
    }

    fn on_app_send(&mut self, idx: u32) {
        let ap = self.manual[idx as usize].clone();
        let data = DataPacket {
            src: ap.src,
            dst: ap.dst,
            flow: ap.flow_id,
            seq: ap.seq,
            created: self.now,
            payload_len: ap.payload_len,
            ttl: DEFAULT_DATA_TTL,
            ext: Vec::new(),
        };
        self.metrics.data_originated += 1;
        self.call_protocol(ap.src, |p, ctx| p.handle_data_origination(ctx, data));
    }

    // ----- protocol callbacks and actions ----------------------------------

    fn call_protocol<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn RoutingProtocol, &mut Ctx),
    {
        // A crashed node runs no protocol code (this also drops CBR
        // originations at a down source).
        if self.faults.as_ref().is_some_and(|fs| fs.node_down(node)) {
            return;
        }
        let n = self.nodes.len();
        let now = self.now;
        let trace_on = self.trace.is_some() || self.auditor.is_some() || self.recorder.is_some();
        let mut actions = Vec::new();
        {
            let slot = &mut self.nodes[node.index()];
            let mut ctx = Ctx::new(now, node, n, &mut slot.proto_rng, &mut actions);
            ctx.set_trace_enabled(trace_on);
            f(slot.protocol.as_mut(), &mut ctx);
        }
        self.apply_actions(node, actions);
        if self.cfg.audit_every_event {
            self.audit_now();
        }
        self.invariant_check();
    }

    /// Re-checks the every-mutation invariants (fd monotonicity,
    /// successor acyclicity) if the auditor is attached. Route tables
    /// only mutate inside protocol callbacks, so running this after
    /// each one observes every table state the run passes through.
    fn invariant_check(&mut self) {
        if self.auditor.is_none() {
            return;
        }
        let dumps: Vec<Vec<crate::protocol::RouteDump>> =
            self.nodes.iter().map(|s| s.protocol.route_table_dump()).collect();
        let successors: Vec<Vec<(NodeId, NodeId)>> =
            self.nodes.iter().map(|s| s.protocol.route_successors()).collect();
        let had_report = self.auditor.as_ref().is_some_and(|a| a.report().is_some());
        let Some(aud) = self.auditor.as_mut() else { return };
        let new = aud.check(self.now, self.cfg.seed, &dumps, &successors);
        self.metrics.invariant_checks += 1;
        self.metrics.invariant_breaches += new;
        // First breach of the run: attach the flight recorder's dump to
        // the forensic report, so the failure ships with per-node
        // context beyond the auditor's own trace ring.
        if !had_report && new > 0 {
            if let Some(flight) = self.recorder.as_ref().map(|r| r.dump()) {
                if let Some(aud) = self.auditor.as_mut() {
                    aud.attach_flight(flight);
                }
            }
        }
    }

    fn apply_actions(&mut self, node: NodeId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Broadcast { ctrl, initiated } => {
                    if initiated {
                        self.metrics.record_control_init(ctrl.kind);
                    }
                    self.enqueue_frame(node, None, PacketBody::Control(ctrl), false);
                }
                Action::UnicastControl { next, ctrl, initiated, notify_failure } => {
                    if initiated {
                        self.metrics.record_control_init(ctrl.kind);
                    }
                    self.enqueue_frame(node, Some(next), PacketBody::Control(ctrl), notify_failure);
                }
                Action::SendData { next, data } => {
                    self.emit(TraceEvent::DataSend {
                        node,
                        next,
                        dst: data.dst,
                        flow: data.flow,
                        seq: data.seq,
                    });
                    self.enqueue_frame(node, Some(next), PacketBody::Data(data), true);
                }
                Action::Deliver { data } => {
                    let latency = self.now.saturating_since(data.created);
                    self.metrics.record_delivery(data.flow, data.seq, latency);
                    self.emit(TraceEvent::Delivered { node, flow: data.flow, seq: data.seq });
                }
                Action::DropData { data, reason } => {
                    self.metrics.record_drop(reason);
                    self.emit(TraceEvent::DataDrop {
                        node,
                        flow: data.flow,
                        seq: data.seq,
                        reason,
                    });
                }
                Action::SetTimer { delay, token } => {
                    self.fel.schedule(self.now + delay, Event::ProtocolTimer { node, token });
                }
                Action::Count { which, amount } => {
                    self.metrics.record_proto(which, amount);
                }
                Action::Trace(event) => {
                    self.trace_events += 1;
                    self.emit(event);
                }
            }
        }
    }

    fn enqueue_frame(
        &mut self,
        node: NodeId,
        dst: Option<NodeId>,
        body: PacketBody,
        notify_failure: bool,
    ) {
        let uid = self.next_uid;
        self.next_uid += 1;
        let packet = Packet { uid, origin: node, body };
        let frame = OutFrame { packet, dst, notify_failure, attempts: 0, counted_tx: false };
        let cap = self.cfg.phy.ifq_cap;
        if self.nodes[node.index()].mac.enqueue(frame, cap) {
            self.kick_now(node);
        }
    }

    // ----- MAC state machine ------------------------------------------------

    /// Schedules an immediate MAC wake-up for `node`.
    ///
    /// In fast-path mode ([`SimConfig::spatial_grid`]) wake-ups that
    /// are provably no-ops *at scheduling time* are elided instead —
    /// they make up the majority of all events at paper scale. A
    /// wake-up at `now` is a no-op when the MAC is
    ///
    /// * `Idle` with an empty queue (the handler returns immediately;
    ///   any later enqueue schedules its own kick),
    /// * in `Backoff` with `until > now` (early kicks return without
    ///   drawing randomness, and entering `Backoff` always scheduled a
    ///   kick at `until`),
    /// * `Transmitting` or awaiting an ACK (dead match arms; every
    ///   transition out of these states — `TxEnd`, `AckTimeout`, ACK
    ///   reception — issues its own kick afterwards).
    ///
    /// Elided events execute no code, mutate no state and draw no RNG,
    /// and the relative FIFO order of the remaining same-timestamp
    /// events is unchanged, so elision is observation-equivalent: runs
    /// with and without it are byte-identical in metrics and trace.
    fn kick_now(&mut self, node: NodeId) {
        if self.cfg.spatial_grid {
            let mac = &self.nodes[node.index()].mac;
            let noop = match mac.state {
                MacState::Idle => mac.queue.is_empty(),
                MacState::Backoff { until } => until > self.now,
                MacState::Transmitting { .. } | MacState::AwaitAck { .. } => true,
            };
            if noop {
                return;
            }
        }
        self.fel.schedule(self.now, Event::MacKick(node));
    }

    /// A node's medium is busy while any reception is in progress or its
    /// own radio is occupied.
    fn medium_busy_until(&self, node: NodeId) -> Option<SimTime> {
        let slot = &self.nodes[node.index()];
        let mut until: Option<SimTime> = None;
        for rx in &slot.rx {
            if rx.end > self.now {
                until = Some(until.map_or(rx.end, |u: SimTime| u.max(rx.end)));
            }
        }
        if slot.mac.ack_busy_until > self.now {
            let t = slot.mac.ack_busy_until;
            until = Some(until.map_or(t, |u| u.max(t)));
        }
        until
    }

    fn mac_kick(&mut self, node: NodeId) {
        let now = self.now;
        match self.nodes[node.index()].mac.state {
            MacState::Idle => {
                if self.nodes[node.index()].mac.queue.is_empty() {
                    return;
                }
                // Begin contention for the head frame.
                let phy = self.cfg.phy.clone();
                let slot = &mut self.nodes[node.index()];
                let backoff = slot.mac.draw_backoff(&phy);
                let until = now + backoff;
                slot.mac.state = MacState::Backoff { until };
                self.fel.schedule(until, Event::MacKick(node));
            }
            MacState::Backoff { until } => {
                if until > now {
                    return; // early kick; the scheduled one will land at `until`
                }
                if self.nodes[node.index()].mac.queue.is_empty() {
                    self.nodes[node.index()].mac.state = MacState::Idle;
                    return;
                }
                if let Some(busy_until) = self.medium_busy_until(node) {
                    // Non-persistent CSMA: re-draw after the medium frees.
                    let phy = self.cfg.phy.clone();
                    let slot = &mut self.nodes[node.index()];
                    let backoff = slot.mac.draw_backoff(&phy);
                    let until = busy_until + backoff;
                    slot.mac.state = MacState::Backoff { until };
                    self.fel.schedule(until, Event::MacKick(node));
                    return;
                }
                self.start_transmission(node);
            }
            MacState::Transmitting { .. } | MacState::AwaitAck { .. } => {}
        }
    }

    fn start_transmission(&mut self, node: NodeId) {
        let now = self.now;
        let phy = self.cfg.phy.clone();
        let tx_id = self.next_tx_id;
        self.next_tx_id += 1;

        let (frame, dur) = {
            let slot = &mut self.nodes[node.index()];
            let Some(head) = slot.mac.queue.front_mut() else { return };
            let dur = phy.tx_duration(head.packet.wire_size());
            let count_now = !head.counted_tx;
            head.counted_tx = true;
            let frame = Frame {
                src: node,
                dst: head.dst,
                payload: FramePayload::Packet(head.packet.clone()),
            };
            if count_now {
                match &head.packet.body {
                    PacketBody::Data(_) => self.metrics.data_tx_hops += 1,
                    PacketBody::Control(c) => self.metrics.record_control_tx(c.kind),
                }
            }
            (frame, dur)
        };
        self.nodes[node.index()].mac.state = MacState::Transmitting { tx_id, until: now + dur };
        self.fel.schedule(now + dur, Event::TxEnd { node, tx_id });
        if self.faults.is_some() {
            if let FramePayload::Packet(p) = &frame.payload {
                if matches!(p.body, PacketBody::Control(_)) {
                    self.last_control[node.index()] = Some(frame.clone());
                }
            }
        }
        let (uid, dst) = match &frame.payload {
            FramePayload::Packet(p) => (Some(p.uid), frame.dst),
            FramePayload::Ack { .. } => (None, frame.dst),
        };
        self.emit(TraceEvent::TxStart { node, uid, dst });
        self.propagate(node, frame, tx_id, dur);
    }

    /// Emits a frame onto the medium: marks collisions and schedules
    /// receptions at every node in range (per [`World::in_range_into`],
    /// grid-indexed or linearly scanned — identical either way).
    ///
    /// All of a transmission's receptions end at the same instant
    /// `now + prop + dur` and their per-receiver `RxEnd` events are
    /// scheduled back to back (consecutive sequence numbers), so no
    /// other event can pop between them. In fast-path mode
    /// ([`SimConfig::spatial_grid`]) they are therefore replaced by a
    /// single [`Event::RxEndBatch`] that walks the same receivers in
    /// the same ascending order — observation-equivalent, and it
    /// removes the event queue's largest event class.
    fn propagate(&mut self, sender: NodeId, frame: Frame, tx_id: u64, dur: SimDuration) {
        let now = self.now;
        let prop = self.cfg.phy.prop_delay;

        // A station transmitting cannot hear; corrupt its receptions.
        for rx in &mut self.nodes[sender.index()].rx {
            if rx.end > now {
                rx.corrupted = true;
            }
        }

        let mut in_range = std::mem::take(&mut self.range_scratch);
        self.in_range_into(sender, &mut in_range);
        let frame = Rc::new(frame);
        let capture = self.cfg.phy.capture_distance_ratio;
        let end = now + prop + dur;
        let batching = self.cfg.spatial_grid;
        let mut receivers =
            if batching { self.batch_pool.pop().unwrap_or_default() } else { Vec::new() };
        for &(m, dist_sq) in &in_range {
            // Fault layer: crashed receivers and administratively
            // severed links hear nothing; impaired links draw per-frame
            // loss/corruption from the dedicated "faults" RNG stream.
            if !self.link_usable(sender, m) {
                continue;
            }
            let fate = match self.faults.as_mut() {
                Some(fs) => fs.rx_draw(sender, m),
                None => RxFate::Deliver,
            };
            if fate == RxFate::Lose {
                continue;
            }
            let sender_dist = dist_sq.sqrt();
            let receiver = &mut self.nodes[m.index()];
            // A station that is itself transmitting cannot receive.
            let mut corrupted = fate == RxFate::Corrupt || !receiver.mac.radio_free(now);
            // Overlapping receptions corrupt each other — unless the
            // earlier frame's transmitter is so much closer that the
            // receiver captures it (first-frame capture only).
            for rx in &mut receiver.rx {
                if rx.end > now {
                    let captured = matches!(
                        capture,
                        Some(ratio) if rx.sender_dist * ratio <= sender_dist
                    );
                    if !captured {
                        rx.corrupted = true;
                    }
                    corrupted = true;
                }
            }
            receiver.rx.push(RxInProgress {
                tx_id,
                frame: Rc::clone(&frame),
                end,
                corrupted,
                sender_dist,
            });
            if batching {
                receivers.push(m);
            } else {
                self.fel.schedule(end, Event::RxEnd { node: m, tx_id });
            }
        }
        self.range_scratch = in_range;
        if batching {
            if receivers.is_empty() {
                self.batch_pool.push(receivers);
            } else {
                if self.rx_batches.is_empty() {
                    self.rx_batch_base = tx_id;
                }
                // Transmission ids are issued in increasing order, so
                // the slot index never underflows.
                let idx = (tx_id - self.rx_batch_base) as usize;
                while self.rx_batches.len() <= idx {
                    self.rx_batches.push_back(self.batch_pool.pop().unwrap_or_default());
                }
                self.rx_batches[idx] = receivers;
                self.fel.schedule(end, Event::RxEndBatch { tx_id });
            }
        }
    }

    /// Fast-path form of `RxEnd`: finish every reception of `tx_id`, in
    /// the same ascending receiver order the per-receiver events would
    /// have popped. The per-receiver crash gate of [`World::dispatch`]
    /// is applied per receiver here, and nothing that runs during the
    /// batch can crash a node or cancel a sibling reception mid-batch
    /// (faults only fire from their own scheduled events), so the two
    /// forms are observation-equivalent.
    fn on_rx_end_batch(&mut self, tx_id: u64) {
        let Some(idx) = tx_id.checked_sub(self.rx_batch_base).map(|i| i as usize) else { return };
        let Some(slot) = self.rx_batches.get_mut(idx) else { return };
        let mut receivers = std::mem::take(slot);
        // Trim consumed slots off the ring front so it stays narrow.
        while self.rx_batches.front().is_some_and(Vec::is_empty) {
            if let Some(spare) = self.rx_batches.pop_front() {
                self.batch_pool.push(spare);
            }
            self.rx_batch_base += 1;
        }
        for &m in &receivers {
            if self.faults.as_ref().is_some_and(|fs| fs.node_down(m)) {
                continue;
            }
            self.on_rx_end(m, tx_id);
        }
        receivers.clear();
        self.batch_pool.push(receivers);
    }

    fn on_tx_end(&mut self, node: NodeId, tx_id: u64) {
        let phy = self.cfg.phy.clone();
        let now = self.now;
        let slot = &mut self.nodes[node.index()];
        match slot.mac.state {
            MacState::Transmitting { tx_id: t, .. } if t == tx_id => {}
            _ => return, // stale
        }
        let Some(head) = slot.mac.queue.front() else { return };
        if head.dst.is_none() {
            // Broadcast: one shot, done.
            slot.mac.queue.pop_front();
            slot.mac.reset_cw(&phy);
            slot.mac.state = MacState::Idle;
            self.kick_now(node);
        } else {
            let until = now + phy.ack_timeout();
            slot.mac.state = MacState::AwaitAck { tx_id, until };
            self.fel.schedule(until, Event::AckTimeout { node, tx_id });
        }
    }

    fn on_ack_timeout(&mut self, node: NodeId, tx_id: u64) {
        let phy = self.cfg.phy.clone();
        let verdict = {
            let slot = &mut self.nodes[node.index()];
            match slot.mac.state {
                MacState::AwaitAck { tx_id: t, .. } if t == tx_id => {}
                _ => return, // acked already, or stale
            }
            slot.mac.note_attempt_failed(&phy)
        };
        match verdict {
            RetryVerdict::Retry => {
                let slot = &mut self.nodes[node.index()];
                slot.mac.grow_cw(&phy);
                slot.mac.state = MacState::Idle;
                self.kick_now(node);
            }
            RetryVerdict::GiveUp => {
                let (packet, dst, notify) = {
                    let slot = &mut self.nodes[node.index()];
                    slot.mac.reset_cw(&phy);
                    slot.mac.state = MacState::Idle;
                    let Some(frame) = slot.mac.queue.pop_front() else {
                        self.kick_now(node);
                        return;
                    };
                    (frame.packet, frame.dst, frame.notify_failure)
                };
                self.kick_now(node);
                // AwaitAck only ever arises for unicast frames, so `dst`
                // is present; a broadcast head here would be a kernel bug
                // and is simply not reported rather than panicking.
                let Some(next_hop) = dst else { return };
                self.emit(TraceEvent::MacGiveUp { node, dst: next_hop, uid: packet.uid });
                if notify {
                    self.call_protocol(node, |p, ctx| {
                        p.handle_unicast_failure(ctx, next_hop, packet)
                    });
                }
            }
        }
    }

    fn on_rx_end(&mut self, node: NodeId, tx_id: u64) {
        let phy = self.cfg.phy.clone();
        let rx = {
            let slot = &mut self.nodes[node.index()];
            let Some(pos) = slot.rx.iter().position(|r| r.tx_id == tx_id) else {
                return;
            };
            slot.rx.swap_remove(pos)
        };
        if rx.corrupted {
            self.metrics.collisions += 1;
            self.emit(TraceEvent::RxCollision { node });
            self.kick_now(node);
            return;
        }
        let frame = rx.frame;
        let src = frame.src;
        let for_me = frame.dst == Some(node);
        let broadcast = frame.dst.is_none();
        if let FramePayload::Ack { acked_tx } = frame.payload {
            if for_me {
                let slot = &mut self.nodes[node.index()];
                if let MacState::AwaitAck { tx_id: t, .. } = slot.mac.state {
                    if t == acked_tx {
                        slot.mac.queue.pop_front();
                        slot.mac.reset_cw(&phy);
                        slot.mac.state = MacState::Idle;
                    }
                }
            }
            self.kick_now(node);
            return;
        }
        let FramePayload::Packet(ref packet) = frame.payload else {
            return; // cannot occur: the ACK arm returned above
        };
        let uid = packet.uid;
        if for_me || broadcast {
            self.emit(TraceEvent::RxOk { node, uid: Some(uid) });
        }
        if for_me {
            self.send_ack(node, src, tx_id);
        }
        if for_me || broadcast {
            let fresh = self.nodes[node.index()].recent.insert(uid);
            if fresh {
                let prev_hop = src;
                // The last receiver to process this transmission holds the
                // only remaining `Rc` and can take the packet by value;
                // earlier receivers deep-clone (route vectors make that
                // clone expensive).
                let pkt = match Rc::try_unwrap(frame) {
                    Ok(owned) => match owned.payload {
                        FramePayload::Packet(p) => p,
                        FramePayload::Ack { .. } => return, // cannot occur (ACK handled above)
                    },
                    Err(shared) => match &shared.payload {
                        FramePayload::Packet(p) => p.clone(),
                        FramePayload::Ack { .. } => return, // cannot occur (ACK handled above)
                    },
                };
                match pkt.body {
                    PacketBody::Data(data) => {
                        self.call_protocol(node, |p, ctx| {
                            p.handle_data_packet(ctx, prev_hop, data)
                        });
                    }
                    PacketBody::Control(ctrl) => {
                        self.call_protocol(node, |p, ctx| {
                            p.handle_control(ctx, prev_hop, ctrl, broadcast)
                        });
                    }
                }
            }
        }
        // Overheard unicast for someone else: ignored (no promiscuous
        // mode).
        self.kick_now(node);
    }

    /// Transmits a link-layer ACK SIFS after a successful reception.
    /// ACKs ignore carrier sense (as in 802.11) but are skipped if this
    /// radio is already busy sending.
    fn send_ack(&mut self, node: NodeId, to: NodeId, acked_tx: u64) {
        let phy = self.cfg.phy.clone();
        let now = self.now;
        if !self.nodes[node.index()].mac.radio_free(now) {
            return;
        }
        let dur = phy.sifs + phy.ack_duration();
        self.nodes[node.index()].mac.ack_busy_until = now + dur;
        let tx_id = self.next_tx_id;
        self.next_tx_id += 1;
        let frame = Frame { src: node, dst: Some(to), payload: FramePayload::Ack { acked_tx } };
        self.propagate(node, frame, tx_id, dur);
        // Free the radio (and retry pending frames) when the ACK ends.
        self.fel.schedule(now + dur, Event::MacKick(node));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PhyConfig, SimConfig};
    use crate::mobility::StaticMobility;
    use crate::protocol::DropReason;
    use crate::static_routing::StaticRouting;
    use crate::telemetry::TelemetryConfig;

    fn small_world(n: usize, spacing: f64, seed: u64) -> World {
        let mobility = StaticMobility::line(n, spacing);
        let cfg = SimConfig {
            phy: PhyConfig::default(),
            duration: SimDuration::from_secs(30),
            seed,
            audit_interval: None,
            audit_every_event: false,
            invariant_audit: false,
            fault_plan: None,
            spatial_grid: true,
            telemetry: None,
        };
        let topo = StaticRouting::tables_for_line(n);
        World::new(cfg, Box::new(mobility), move |id, _| {
            Box::new(StaticRouting::new(id, topo.clone()))
        })
    }

    #[test]
    fn single_hop_delivery() {
        let mut w = small_world(2, 100.0, 1);
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(1), 512);
        let m = w.run();
        assert_eq!(m.data_originated, 1);
        assert_eq!(m.data_delivered, 1);
        assert!(m.mean_latency_s() > 0.0 && m.mean_latency_s() < 0.1);
    }

    #[test]
    fn multi_hop_chain_delivery() {
        let mut w = small_world(5, 200.0, 2);
        for i in 0..20 {
            w.schedule_app_packet(SimTime::from_millis(1000 + i * 100), NodeId(0), NodeId(4), 512);
        }
        let m = w.run();
        assert_eq!(m.data_originated, 20);
        assert_eq!(m.data_delivered, 20, "chain should deliver everything");
        assert!(m.data_tx_hops >= 80, "4 hops x 20 packets");
    }

    #[test]
    fn out_of_range_nodes_cannot_communicate() {
        // 400 m spacing > 275 m range: no neighbours, MAC gives up.
        let mut w = small_world(2, 400.0, 3);
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(1), 512);
        let m = w.run();
        assert_eq!(m.data_delivered, 0);
        assert_eq!(m.mac_retry_failures, 1);
    }

    #[test]
    fn neighbors_respect_range() {
        let w = small_world(4, 200.0, 4);
        // 200 m spacing, 275 m range: only adjacent nodes are neighbours.
        // `neighbors` is a read-only query: `w` needs no `mut`.
        assert_eq!(w.neighbors(NodeId(0)), vec![NodeId(1)]);
        assert_eq!(w.neighbors(NodeId(1)), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed: u64| {
            let mut w = small_world(5, 200.0, seed);
            for i in 0..50 {
                w.schedule_app_packet(
                    SimTime::from_millis(500 + i * 37),
                    NodeId(0),
                    NodeId(4),
                    512,
                );
            }
            let m = w.run();
            (m.data_delivered, m.data_tx_hops, m.collisions)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn cbr_traffic_generates_and_delivers() {
        let mobility = StaticMobility::line(3, 150.0);
        let cfg =
            SimConfig { duration: SimDuration::from_secs(60), seed: 5, ..SimConfig::default() };
        let topo = StaticRouting::tables_for_line(3);
        let mut w = World::new(cfg, Box::new(mobility), move |id, _| {
            Box::new(StaticRouting::new(id, topo.clone()))
        });
        w.with_cbr(TrafficConfig::paper(2));
        let m = w.run();
        assert!(m.data_originated > 100, "expected CBR load, got {}", m.data_originated);
        assert!(
            m.delivery_ratio() > 0.95,
            "static 3-node chain should deliver nearly everything: {}",
            m.delivery_ratio()
        );
        assert!(m.sim_seconds == 60.0);
    }

    #[test]
    fn contention_produces_some_collisions() {
        // Many nodes in range of each other, heavy broadcast-free data
        // load: the DCF should still mostly cope, but hidden terminals
        // don't exist here so collisions stay modest. Use a longer chain
        // with cross traffic to induce hidden-terminal collisions.
        // Saturating bidirectional load over a 5-hop chain: hidden
        // terminals must produce collisions.
        let mut w = small_world(6, 250.0, 9);
        for i in 0..200u64 {
            w.schedule_app_packet(SimTime::from_millis(500 + i * 11), NodeId(0), NodeId(5), 512);
            w.schedule_app_packet(SimTime::from_millis(505 + i * 11), NodeId(5), NodeId(0), 512);
        }
        let m = w.run();
        assert!(m.collisions > 0, "hidden terminals should collide sometimes");
        assert!(m.data_delivered > 0, "some packets must still get through");
    }

    #[test]
    fn moderate_load_mostly_recovered_by_retries() {
        let mut w = small_world(6, 250.0, 9);
        for i in 0..200u64 {
            w.schedule_app_packet(SimTime::from_millis(500 + i * 60), NodeId(0), NodeId(5), 512);
            w.schedule_app_packet(SimTime::from_millis(530 + i * 60), NodeId(5), NodeId(0), 512);
        }
        let m = w.run();
        assert!(
            m.delivery_ratio() > 0.5,
            "MAC retries should recover most frames at moderate load: {}",
            m.delivery_ratio()
        );
    }

    #[test]
    fn ttl_expiry_counted_as_drop() {
        // StaticRouting drops when TTL runs out; build a tiny TTL packet
        // by scheduling across a chain longer than the TTL. DEFAULT TTL
        // is 64 so instead verify NoRoute drops for unreachable dest.
        let mut w = small_world(2, 100.0, 11);
        // destination 5 does not exist in the static tables (n=2): the
        // protocol reports NoRoute.
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(1), 512);
        w.schedule_app_packet(SimTime::from_secs(2), NodeId(1), NodeId(0), 512);
        let m = w.run();
        assert_eq!(m.data_delivered, 2);
        assert_eq!(m.drops.get(&DropReason::NoRoute), None);
    }

    #[test]
    fn trace_records_packet_lifecycle() {
        use crate::trace::{MemoryTrace, TraceEvent};
        let shared = MemoryTrace::shared();
        let mut w = small_world(3, 200.0, 15);
        w.set_trace(Box::new(shared.clone()));
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(2), 512);
        let m = w.run();
        assert_eq!(m.data_delivered, 1);
        let tr = shared.lock().unwrap();
        let tx = tr.count(|e| matches!(e, TraceEvent::TxStart { uid: Some(_), .. }));
        let rx = tr.count(|e| matches!(e, TraceEvent::RxOk { .. }));
        let delivered = tr.count(|e| matches!(e, TraceEvent::Delivered { .. }));
        assert!(tx >= 2, "two data hops: {tx}");
        assert!(rx >= 2, "each hop received: {rx}");
        assert_eq!(delivered, 1);
        // Events are time-ordered.
        assert!(tr.events().windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn capture_lets_the_closer_frame_survive_hidden_terminal_overlap() {
        use crate::geometry::Position;
        use crate::mobility::StaticMobility;
        // R(0,0) hears A(-50,0) and B(250,0); A and B are 300 m apart
        // and cannot carrier-sense each other (hidden terminals). A's
        // frame starts first and its transmitter is >3.16x closer, so
        // with capture enabled R still decodes it.
        let run = |capture: Option<f64>| {
            let positions = vec![
                Position::new(0.0, 0.0),   // R
                Position::new(-50.0, 0.0), // A
                Position::new(250.0, 0.0), // B
            ];
            let adj = vec![vec![1, 2], vec![0], vec![0]];
            let topo = StaticRouting::from_adjacency(&adj);
            let cfg = SimConfig {
                phy: PhyConfig { capture_distance_ratio: capture, ..PhyConfig::default() },
                duration: SimDuration::from_secs(10),
                seed: 5,
                ..SimConfig::default()
            };
            let mut w = World::new(cfg, Box::new(StaticMobility::new(positions)), move |id, _| {
                Box::new(StaticRouting::new(id, topo.clone()))
            });
            // Repeat the overlapping pair many times so backoff
            // randomness cannot hide the effect.
            for k in 0..50u64 {
                let base = 100_000_000 + k * 100_000_000; // every 100 ms
                w.fel.schedule(SimTime::from_nanos(base), Event::AppSend { idx: 0 });
                // B starts 500 us into A's ~2.4 ms frame.
                w.fel.schedule(SimTime::from_nanos(base + 500_000), Event::AppSend { idx: 1 });
                // (re-use two manual packets scheduled below)
            }
            w.manual.push(AppPacket {
                src: NodeId(1),
                dst: NodeId(0),
                payload_len: 512,
                flow_id: MANUAL_FLOW_BASE,
                seq: 0,
            });
            w.manual.push(AppPacket {
                src: NodeId(2),
                dst: NodeId(0),
                payload_len: 512,
                flow_id: MANUAL_FLOW_BASE + 1,
                seq: 0,
            });
            w.run()
        };
        let without = run(None);
        let with = run(Some(3.16));
        assert!(
            with.collisions < without.collisions,
            "capture must reduce corrupted receptions: {} !< {}",
            with.collisions,
            without.collisions
        );
        assert!(without.collisions > 0, "hidden terminals must collide at all");
    }

    fn faulted_world(n: usize, plan: crate::faults::FaultPlan, seed: u64) -> World {
        let mobility = StaticMobility::line(n, 200.0);
        let cfg = SimConfig {
            duration: SimDuration::from_secs(10),
            seed,
            fault_plan: Some(plan),
            ..SimConfig::default()
        };
        let topo = StaticRouting::tables_for_line(n);
        World::new(cfg, Box::new(mobility), move |id, _| {
            Box::new(StaticRouting::new(id, topo.clone()))
        })
    }

    #[test]
    fn crash_silences_relay_until_restart() {
        use crate::faults::{FaultAction, FaultPlan};
        let plan = FaultPlan::new(vec![(
            SimTime::from_secs(2),
            FaultAction::CrashRestart { node: NodeId(1), downtime: SimDuration::from_secs(2) },
        )]);
        let mut w = faulted_world(3, plan, 21);
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(2), 512); // before crash
        w.schedule_app_packet(SimTime::from_millis(2500), NodeId(0), NodeId(2), 512); // relay down
        w.schedule_app_packet(SimTime::from_secs(6), NodeId(0), NodeId(2), 512); // after restart
        let m = w.run();
        assert_eq!(m.data_delivered, 2, "only the mid-crash packet is lost");
        assert_eq!(m.faults_injected, 1);
        assert_eq!(m.node_restarts, 1);
        assert_eq!(m.mac_retry_failures, 1, "sender gives up on the dead relay");
    }

    #[test]
    fn admin_link_cut_blocks_until_restored() {
        use crate::faults::{FaultAction, FaultPlan};
        let plan = FaultPlan::new(vec![
            (SimTime::from_millis(1500), FaultAction::LinkDown { a: NodeId(0), b: NodeId(1) }),
            (SimTime::from_millis(3500), FaultAction::LinkUp { a: NodeId(1), b: NodeId(0) }),
        ]);
        let mut w = faulted_world(2, plan, 22);
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(1), 512);
        w.schedule_app_packet(SimTime::from_secs(2), NodeId(0), NodeId(1), 512);
        w.schedule_app_packet(SimTime::from_secs(4), NodeId(0), NodeId(1), 512);
        let m = w.run();
        assert_eq!(m.data_delivered, 2, "the cut swallows exactly the middle packet");
        assert_eq!(m.faults_injected, 2);
        assert_eq!(m.node_restarts, 0);
    }

    #[test]
    fn partition_and_heal_gate_cross_traffic() {
        use crate::faults::{FaultAction, FaultPlan};
        let plan = FaultPlan::new(vec![
            (SimTime::from_millis(1500), FaultAction::Partition { group: vec![NodeId(0)] }),
            (SimTime::from_millis(3500), FaultAction::Heal),
        ]);
        let mut w = faulted_world(2, plan, 23);
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(1), 512);
        w.schedule_app_packet(SimTime::from_secs(2), NodeId(0), NodeId(1), 512);
        w.schedule_app_packet(SimTime::from_secs(4), NodeId(0), NodeId(1), 512);
        let m = w.run();
        assert_eq!(m.data_delivered, 2);
    }

    #[test]
    fn total_loss_impairment_blocks_a_link() {
        use crate::faults::{FaultAction, FaultPlan};
        let plan = FaultPlan::new(vec![(
            SimTime::from_millis(500),
            FaultAction::LinkImpair {
                a: NodeId(0),
                b: NodeId(1),
                loss_ppm: 1_000_000,
                corrupt_ppm: 0,
            },
        )]);
        let mut w = faulted_world(2, plan, 24);
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(1), 512);
        let m = w.run();
        assert_eq!(m.data_delivered, 0);
        assert_eq!(m.mac_retry_failures, 1);
    }

    #[test]
    fn faulted_runs_replay_identically() {
        use crate::faults::{FaultIntensity, FaultPlan};
        let run = || {
            let plan = FaultPlan::random(
                &mut SimRng::stream(77, "plan"),
                &FaultIntensity::level(5, SimDuration::from_secs(10), 2),
            );
            let mut w = faulted_world(5, plan, 25);
            for i in 0..30u64 {
                w.schedule_app_packet(
                    SimTime::from_millis(500 + i * 123),
                    NodeId(0),
                    NodeId(4),
                    512,
                );
            }
            let m = w.run();
            (
                m.data_delivered,
                m.data_tx_hops,
                m.collisions,
                m.mac_retry_failures,
                m.faults_injected,
                m.node_restarts,
                m.latency_sum_s.to_bits(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn neighbors_exclude_crashed_nodes_and_severed_links() {
        use crate::faults::{FaultAction, FaultPlan};
        // line(4, 200): with 275 m range only adjacent nodes are
        // neighbors. Crash node 1 and sever 2–3 at t=2.
        let plan = FaultPlan::new(vec![
            (
                SimTime::from_secs(2),
                FaultAction::CrashRestart {
                    node: NodeId(1),
                    downtime: SimDuration::from_secs(100),
                },
            ),
            (SimTime::from_secs(2), FaultAction::LinkDown { a: NodeId(2), b: NodeId(3) }),
        ]);
        let mut w = faulted_world(4, plan, 31);
        assert_eq!(w.neighbors(NodeId(0)), vec![NodeId(1)], "pre-fault view intact");
        w.run_until(SimTime::from_secs(3));
        // The crashed node vanishes from every neighbor's view — the
        // radio model (`propagate`) has always dropped frames to it;
        // `neighbors` must agree.
        assert_eq!(w.neighbors(NodeId(0)), vec![], "crashed node still visible");
        // A crashed node sees no one either.
        assert_eq!(w.neighbors(NodeId(1)), vec![]);
        // The severed link is gone from both endpoints' views (and
        // node 2's other neighbor, 1, is down).
        assert_eq!(w.neighbors(NodeId(2)), vec![]);
        assert_eq!(w.neighbors(NodeId(3)), vec![]);
    }

    #[test]
    fn single_node_cbr_is_skipped_not_hung() {
        // A 1-node world has no valid (src, dst) pair: flow setup must
        // skip rather than rejection-sample forever.
        let mut w = small_world(1, 100.0, 41);
        w.with_cbr(TrafficConfig::paper(3));
        let m = w.run();
        assert_eq!(m.data_originated, 0);
        assert_eq!(m.data_delivered, 0);
        assert_eq!(m.sim_seconds, 30.0);
    }

    #[test]
    fn grid_and_linear_worlds_are_byte_identical() {
        use crate::geometry::Terrain;
        use crate::mobility::RandomWaypoint;
        use crate::trace::MemoryTrace;
        let run = |spatial_grid: bool| {
            let mobility = RandomWaypoint::new(
                20,
                Terrain::new(800.0, 300.0),
                SimDuration::from_secs(5),
                1.0,
                20.0,
                SimRng::stream(9, "mobility"),
            );
            let cfg = SimConfig {
                duration: SimDuration::from_secs(20),
                seed: 9,
                spatial_grid,
                ..SimConfig::default()
            };
            let topo = StaticRouting::tables_for_line(20);
            let mut w = World::new(cfg, Box::new(mobility), move |id, _| {
                Box::new(StaticRouting::new(id, topo.clone()))
            });
            let shared = MemoryTrace::shared();
            w.set_trace(Box::new(shared.clone()));
            w.with_cbr(TrafficConfig::paper(4));
            let end = SimTime::ZERO + SimDuration::from_secs(20);
            w.run_until(end);
            w.finalize();
            let metrics = w.metrics().clone();
            let events = w.events_executed();
            let trace: Vec<_> = shared.lock().map(|t| t.events().to_vec()).unwrap_or_default();
            (metrics, trace, events)
        };
        let (gm, gt, ge) = run(true);
        let (lm, lt, le) = run(false);
        assert_eq!(gm, lm, "metrics must be byte-identical");
        assert_eq!(gt, lt, "traces must be byte-identical");
        assert!(ge < le, "fast path should execute fewer events ({ge} !< {le})");
    }

    #[test]
    fn audit_finds_no_loops_in_static_routing() {
        let mobility = StaticMobility::line(4, 150.0);
        let cfg = SimConfig {
            duration: SimDuration::from_secs(10),
            seed: 13,
            audit_interval: Some(SimDuration::from_secs(1)),
            ..SimConfig::default()
        };
        let topo = StaticRouting::tables_for_line(4);
        let mut w = World::new(cfg, Box::new(mobility), move |id, _| {
            Box::new(StaticRouting::new(id, topo.clone()))
        });
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(3), 512);
        let m = w.run();
        assert_eq!(m.loop_violations, 0);
    }

    fn telemetry_world(n: usize, seed: u64, telemetry: Option<TelemetryConfig>) -> World {
        let mobility = StaticMobility::line(n, 150.0);
        let cfg = SimConfig {
            duration: SimDuration::from_secs(10),
            seed,
            telemetry,
            ..SimConfig::default()
        };
        let topo = StaticRouting::tables_for_line(n);
        let mut w = World::new(cfg, Box::new(mobility), move |id, _| {
            Box::new(StaticRouting::new(id, topo.clone()))
        });
        w.with_cbr(crate::traffic::TrafficConfig::paper(2));
        w
    }

    #[test]
    fn telemetry_is_observation_pure() {
        // Attaching the flight recorder and the sampler must not change
        // one bit of the run's metrics.
        let plain = {
            let mut w = telemetry_world(4, 21, None);
            w.run_until(SimTime::from_secs(10));
            w.finalize();
            w.metrics().clone()
        };
        let telemetered = {
            let mut w = telemetry_world(4, 21, Some(TelemetryConfig::default()));
            w.run_until(SimTime::from_secs(10));
            w.finalize();
            assert!(!w.telemetry_series().is_empty(), "sampler took no samples");
            assert!(!w.flight_dump().is_empty(), "flight recorder stayed empty");
            w.metrics().clone()
        };
        assert_eq!(plain, telemetered, "telemetry changed observable behaviour");
    }

    #[test]
    fn sampler_fires_on_the_configured_cadence() {
        let interval = SimDuration::from_millis(2500);
        let mut w = telemetry_world(
            4,
            3,
            Some(TelemetryConfig { flight_recorder_depth: 8, sample_interval: Some(interval) }),
        );
        w.run_until(SimTime::from_secs(10));
        w.finalize();
        let series = w.telemetry_series();
        // 10 s at 2.5 s: samples at 2.5, 5, 7.5, 10.
        assert_eq!(series.len(), 4, "{series:?}");
        for (i, s) in series.iter().enumerate() {
            assert_eq!(s.at, SimTime::ZERO + SimDuration::from_millis(2500 * (i as u64 + 1)));
            assert!(s.delivered >= s.delivered_w);
        }
        let last = series.last().expect("non-empty");
        assert!(last.originated > 0, "CBR traffic should have originated packets");
        assert!(
            last.events_by_kind.iter().sum::<u64>() > 0,
            "kernel dispatch counts should be snapshotted"
        );
        assert_eq!(w.sample_interval(), Some(interval));
    }

    #[test]
    fn flight_recorder_keeps_a_bounded_global_tail() {
        let mut w = telemetry_world(
            4,
            9,
            Some(TelemetryConfig { flight_recorder_depth: 4, sample_interval: None }),
        );
        w.run_until(SimTime::from_secs(10));
        w.finalize();
        let dump = w.flight_dump();
        assert!(!dump.is_empty());
        assert!(dump.len() <= 4 * 4, "per-node rings must bound the dump");
        assert!(dump.windows(2).all(|p| p[0].seq < p[1].seq), "dump must be seq-ordered");
        // Static routing emits no routing-decision events; the recorder
        // filled from kernel link-layer events alone.
        assert_eq!(w.trace_events(), 0);
        assert!(dump.iter().all(|e| !e.event.is_routing()));
    }
}
