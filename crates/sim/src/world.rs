//! The discrete-event simulation kernel.
//!
//! [`World`] owns the nodes (MAC + routing protocol instances), the
//! future event list, the radio medium, mobility, CBR traffic and
//! metrics, and advances simulated time by executing events in
//! timestamp order. All randomness is drawn from named sub-streams of
//! the run seed, so a `(configuration, seed)` pair replays exactly.

use crate::audit::{ForensicReport, InvariantAuditor};
use crate::config::{PhyConfig, SimConfig};
use crate::event::{Event, EventQueue};
use crate::faults::{FaultAction, FaultState, RxFate};
use crate::loopcheck::{find_loops, LoopViolation};
use crate::mac::{Mac, MacState, OutFrame, RetryVerdict};
use crate::metrics::Metrics;
use crate::mobility::MobilityModel;
use crate::packet::{ControlKind, DataPacket, NodeId, Packet, PacketBody, DEFAULT_DATA_TTL};
use crate::pool::VecPool;
use crate::prof::{
    ProfSnapshot, Profiler, DISPATCH_BASE, HIST_FEL_DEPTH, PHASE_FEL_POP, PHASE_FEL_PUSH,
    PHASE_KERN_LOOP, PHASE_NEIGHBOR_GRID, PHASE_NEIGHBOR_LINEAR, PHASE_PROTOCOL,
    PHASE_TELEMETRY_SAMPLE, PHASE_TRACE_EMIT,
};
use crate::protocol::{Action, Ctx, DropReason, RoutingProtocol};
use crate::rng::SimRng;
use crate::spatial::NeighborGrid;
use crate::telemetry::{FlightEntry, FlightRecorder, SampleBaseline, SeriesSample};
use crate::time::{SimDuration, SimTime};
use crate::trace::{FaultKind, TraceEvent, TraceSink};
use crate::traffic::{FlowState, TrafficConfig};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Link-layer frame payload.
#[derive(Clone, Debug)]
pub(crate) enum FramePayload {
    /// A network-layer packet.
    Packet(Packet),
    /// A link-layer acknowledgement for transmission `acked_tx`.
    Ack { acked_tx: u64 },
}

/// A link-layer frame on the air.
#[derive(Clone, Debug)]
pub(crate) struct Frame {
    pub(crate) src: NodeId,
    /// `None` is a link broadcast.
    pub(crate) dst: Option<NodeId>,
    pub(crate) payload: FramePayload,
}

/// A reception in progress at one node.
///
/// The frame is shared (`Arc`) across every receiver of one
/// transmission: at 100-node scale a broadcast reaches dozens of
/// stations, and deep-cloning the packet per receiver dominated
/// `propagate`'s cost. Atomic (rather than `Rc`) so node slots can
/// move to worker threads under the parallel kernel
/// ([`crate::parallel`]).
#[derive(Clone, Debug)]
pub(crate) struct RxInProgress {
    pub(crate) tx_id: u64,
    pub(crate) frame: Arc<Frame>,
    pub(crate) end: SimTime,
    pub(crate) corrupted: bool,
    /// Transmitter-to-receiver distance, for the capture model.
    pub(crate) sender_dist: f64,
}

/// Deterministic avalanche hasher for `u64` keys (splitmix64 finalizer).
/// The default `HashSet` hasher is SipHash, whose per-insert cost is
/// measurable at paper scale; uids need no DoS resistance, and the
/// sets hashed with this are only ever probed, never iterated, so the
/// swap cannot perturb determinism.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct U64Hasher {
    hash: u64,
}

impl std::hash::Hasher for U64Hasher {
    fn finish(&self) -> u64 {
        self.hash
    }
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (FNV-1a); the u64 fast path below is the one
        // the uid sets actually exercise.
        for &b in bytes {
            self.hash = (self.hash ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    fn write_u64(&mut self, x: u64) {
        let mut h = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.hash = h ^ (h >> 31);
    }
}

pub(crate) type U64Build = std::hash::BuildHasherDefault<U64Hasher>;

/// Bounded remember-set for MAC-level duplicate suppression.
#[derive(Debug, Default)]
pub(crate) struct RecentCache {
    order: VecDeque<u64>,
    set: HashSet<u64, U64Build>,
}

impl RecentCache {
    /// Inserts a uid; returns `false` if it was already present.
    pub(crate) fn insert(&mut self, uid: u64) -> bool {
        if !self.set.insert(uid) {
            return false;
        }
        self.order.push_back(uid);
        if self.order.len() > 128 {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        true
    }
}

pub(crate) struct NodeSlot {
    pub(crate) mac: Mac,
    pub(crate) protocol: Box<dyn RoutingProtocol>,
    pub(crate) proto_rng: SimRng,
    pub(crate) rx: Vec<RxInProgress>,
    pub(crate) recent: RecentCache,
    /// Per-node packet-uid counter; uids are `(node << 48) | ctr`, so
    /// allocation is node-local and the parallel kernel needs no
    /// shared counter. Uniqueness (all duplicate suppression needs) is
    /// preserved because a node never reuses a counter value.
    pub(crate) uid_ctr: u64,
    /// Per-node transmission-id counter, packed like `uid_ctr`. The
    /// sender of a transmission is recoverable as `tx_id >> 48`.
    pub(crate) tx_ctr: u64,
    /// Last control frame this node put on the air (kept only while a
    /// fault plan is installed, for stale-advert replay injection).
    pub(crate) last_control: Option<Frame>,
}

/// A manually injected application packet (tests and examples).
#[derive(Clone, Debug)]
struct AppPacket {
    src: NodeId,
    dst: NodeId,
    payload_len: u16,
    flow_id: u32,
    seq: u32,
}

/// Flow ids at or above this value belong to manually injected packets.
const MANUAL_FLOW_BASE: u32 = 1 << 31;

/// Free-list depth for the hot-path buffer pools. Concurrent
/// transmissions keep at most a few dozen receiver batches in flight
/// and protocol callbacks never nest deeply, so a shallow list already
/// makes the steady-state event loop allocation-free.
const POOL_SPARES: usize = 64;

/// The simulator.
pub struct World {
    pub(crate) cfg: SimConfig,
    pub(crate) mobility: Box<dyn MobilityModel>,
    pub(crate) nodes: Vec<NodeSlot>,
    pub(crate) fel: EventQueue,
    pub(crate) now: SimTime,
    metrics: Metrics,
    traffic_cfg: Option<TrafficConfig>,
    flows: Vec<FlowState>,
    next_flow_id: u32,
    traffic_rng: SimRng,
    manual: Vec<AppPacket>,
    next_manual_flow: u32,
    trace: Option<Box<dyn TraceSink>>,
    pub(crate) auditor: Option<InvariantAuditor>,
    /// Runtime state of the executing fault plan, if one is installed.
    pub(crate) faults: Option<FaultState>,
    /// Spatial neighbor index ([`crate::spatial`]); present when
    /// [`SimConfig::spatial_grid`] is on and the mobility model
    /// promises a finite speed bound. `RefCell` because range queries
    /// are logically read-only ([`World::neighbors`] takes `&self`)
    /// but advance the index's cache epoch.
    grid: Option<RefCell<NeighborGrid>>,
    /// Events executed so far (perf telemetry; deliberately *not* part
    /// of [`Metrics`] — the fast path elides provably no-op events, so
    /// this count may differ between byte-identical runs).
    events_executed: u64,
    /// Events executed so far, by kind ([`Event::KIND_NAMES`] order) —
    /// snapshotted into every telemetry sample. Like
    /// `events_executed`, not part of [`Metrics`].
    dispatch_counts: [u64; Event::KIND_COUNT],
    /// Routing-decision trace events emitted by protocols. A *World*
    /// field, deliberately not part of [`Metrics`]: protocols only
    /// emit when a sink, auditor or flight recorder is attached, so a
    /// metrics-resident count would break the rule that attaching
    /// telemetry changes nothing observable.
    trace_events: u64,
    /// Bounded per-node rings of recent trace events
    /// ([`SimConfig::telemetry`]); dumped into the forensic report at
    /// the first invariant breach.
    recorder: Option<FlightRecorder>,
    /// Time-series samples taken at `TelemetrySample` events.
    series: Vec<SeriesSample>,
    /// Cumulative-counter baseline of the previous sample.
    sample_base: SampleBaseline,
    /// Reusable buffer for [`World::in_range_into`] answers on the hot
    /// `propagate` path (taken and returned with `mem::take`).
    range_scratch: Vec<(NodeId, f64)>,
    /// Fast-path pending receiver lists, keyed by transmission id: the
    /// in-range receivers of one transmission, in the ascending order
    /// their per-receiver `RxEnd` events would have been scheduled
    /// (consumed by [`Event::RxEndBatch`]). Probed by exact key and
    /// never iterated, so the map cannot perturb determinism. Frames
    /// are on the air for milliseconds, so the map stays a few dozen
    /// entries wide.
    pub(crate) rx_batches: HashMap<u64, Vec<NodeId>, U64Build>,
    /// Spare receiver-list allocations recycled across batches.
    batch_pool: VecPool<NodeId>,
    /// Spare protocol-action buffers recycled across callbacks (the
    /// hottest allocation in the event loop: one per protocol
    /// callback). Gated on [`SimConfig::recycle_pools`].
    action_pool: VecPool<Action>,
    /// Windows the parallel kernel ([`crate::parallel`]) fanned out
    /// over worker threads (0 on sequential runs). Purely
    /// observational — never branches the simulation.
    pub(crate) parallel_windows: u64,
    /// The kernel profiler ([`crate::prof`]), attached when
    /// [`SimConfig::profile`] is on. Strictly observational: every
    /// hook first checks this `Option`, so an unprofiled run never
    /// reads a wall clock, and a profiled run mutates nothing but
    /// these counters.
    pub(crate) prof: Option<Box<Profiler>>,
    /// First routing loop the auditor found, if any.
    pub first_loop: Option<LoopViolation>,
}

impl World {
    /// Builds a world with one protocol instance per mobility-model node.
    ///
    /// The factory is called once per node with `(node, n_nodes)`.
    ///
    /// # Panics
    ///
    /// Panics if the mobility model covers zero nodes.
    pub fn new<F>(cfg: SimConfig, mobility: Box<dyn MobilityModel>, mut factory: F) -> Self
    where
        F: FnMut(NodeId, usize) -> Box<dyn RoutingProtocol>,
    {
        let n = mobility.len();
        assert!(n > 0, "world needs at least one node");
        assert!(n <= u16::MAX as usize, "too many nodes");
        let seed = cfg.seed;
        let nodes = (0..n)
            .map(|i| {
                let id = NodeId(i as u16);
                NodeSlot {
                    mac: Mac::new(cfg.phy.cw_min, SimRng::stream(seed, &format!("mac-{i}"))),
                    protocol: factory(id, n),
                    proto_rng: SimRng::stream(seed, &format!("proto-{i}")),
                    rx: Vec::new(),
                    recent: RecentCache::default(),
                    uid_ctr: 0,
                    tx_ctr: 0,
                    last_control: None,
                }
            })
            .collect();
        let auditor = cfg.invariant_audit.then(InvariantAuditor::new);
        let recorder = cfg
            .telemetry
            .as_ref()
            .filter(|t| t.flight_recorder_depth > 0)
            .map(|t| FlightRecorder::new(n, t.flight_recorder_depth));
        // The spatial index needs a finite speed bound to size its
        // query slack; models that promise none fall back to the
        // linear scan (the answers are identical either way).
        let grid = cfg
            .spatial_grid
            .then(|| mobility.max_speed_mps())
            .flatten()
            .filter(|v| v.is_finite() && *v >= 0.0)
            .map(|v_max| RefCell::new(NeighborGrid::new(n, cfg.phy.range_m, v_max)));
        let prof = cfg.profile.then(|| Box::new(Profiler::new()));
        let mut world = World {
            traffic_rng: SimRng::stream(seed, "traffic"),
            cfg,
            mobility,
            nodes,
            fel: EventQueue::new(),
            now: SimTime::ZERO,
            metrics: Metrics::new(),
            traffic_cfg: None,
            flows: Vec::new(),
            next_flow_id: 0,
            manual: Vec::new(),
            next_manual_flow: MANUAL_FLOW_BASE,
            trace: None,
            auditor,
            faults: None,
            grid,
            events_executed: 0,
            dispatch_counts: [0; Event::KIND_COUNT],
            trace_events: 0,
            recorder,
            series: Vec::new(),
            sample_base: SampleBaseline::default(),
            range_scratch: Vec::new(),
            rx_batches: HashMap::default(),
            batch_pool: VecPool::new(POOL_SPARES),
            action_pool: VecPool::new(POOL_SPARES),
            parallel_windows: 0,
            prof,
            first_loop: None,
        };
        if let Some(interval) = world.cfg.audit_interval {
            world.fel.schedule(SimTime::ZERO + interval, Event::Audit);
        }
        // The sampler's events consume FEL sequence numbers, but seq
        // allocation is monotone, so the relative order of all *other*
        // events is unchanged — sampling cannot perturb the run (its
        // handler draws no randomness and schedules only its successor).
        if let Some(interval) = world.cfg.telemetry.as_ref().and_then(|t| t.sample_interval) {
            world.fel.schedule(SimTime::ZERO + interval, Event::TelemetrySample);
        }
        if let Some(plan) = world.cfg.fault_plan.clone() {
            for (i, (at, _)) in plan.entries().iter().enumerate() {
                world.fel.schedule(*at, Event::Fault { idx: i as u32 });
            }
            world.faults = Some(FaultState::new(plan, n, SimRng::stream(seed, "faults")));
        }
        for i in 0..n {
            world.call_protocol(NodeId(i as u16), |p, ctx| p.start(ctx));
        }
        world
    }

    /// Attaches the CBR workload (call before [`World::run`]).
    ///
    /// A world with fewer than two nodes cannot host a two-endpoint
    /// flow — the `src != dst` rejection sampling in flow setup could
    /// never terminate — so flow creation is skipped entirely and the
    /// run carries no traffic.
    pub fn with_cbr(&mut self, tcfg: TrafficConfig) {
        if self.nodes.len() < 2 {
            return;
        }
        for slot in 0..tcfg.n_flows {
            let start = SimTime::ZERO
                + SimDuration::from_nanos(
                    self.traffic_rng.below(tcfg.start_window.as_nanos().max(1)),
                );
            let Some(state) = self.fresh_flow(&tcfg, start) else { return };
            self.flows.push(state);
            self.fel.schedule(start, Event::FlowPacket { flow: slot as u32 });
            self.fel.schedule(self.flows[slot].ends_at, Event::FlowEnd { flow: slot as u32 });
        }
        self.traffic_cfg = Some(tcfg);
    }

    /// Draws a new flow's endpoints and lifetime, or `None` when no
    /// valid `src != dst` pair exists (single-node world) — the guard
    /// that keeps the rejection-sampling loop below total.
    fn fresh_flow(&mut self, tcfg: &TrafficConfig, now: SimTime) -> Option<FlowState> {
        let n = self.nodes.len() as u64;
        if n < 2 {
            return None;
        }
        let src = self.traffic_rng.below(n) as u16;
        let mut dst = self.traffic_rng.below(n) as u16;
        while dst == src {
            dst = self.traffic_rng.below(n) as u16;
        }
        let life = SimDuration::from_secs_f64(self.traffic_rng.exponential(tcfg.mean_flow_secs));
        let flow_id = self.next_flow_id;
        self.next_flow_id += 1;
        Some(FlowState { flow_id, src, dst, next_seq: 0, ends_at: now + life })
    }

    /// Schedules a single application packet from `src` to `dst` at
    /// time `at` (for tests and worked examples). Returns the flow id
    /// used in metrics.
    pub fn schedule_app_packet(
        &mut self,
        at: SimTime,
        src: NodeId,
        dst: NodeId,
        payload_len: u16,
    ) -> u32 {
        let flow_id = self.next_manual_flow;
        self.next_manual_flow += 1;
        let idx = self.manual.len() as u32;
        self.manual.push(AppPacket { src, dst, payload_len, flow_id, seq: 0 });
        self.fel.schedule(at, Event::AppSend { idx });
        flow_id
    }

    /// Attaches a trace sink receiving both packet-lifecycle and
    /// routing-decision events (see [`crate::trace`]). Attaching a sink
    /// enables protocol-side emission for subsequent callbacks.
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    fn emit(&mut self, event: TraceEvent) {
        if let Some(r) = self.recorder.as_mut() {
            r.record(self.now, &event);
        }
        if let Some(a) = self.auditor.as_mut() {
            a.observe(self.now, &event);
        }
        if let Some(t) = self.trace.as_mut() {
            t.record(self.now, event);
        }
    }

    /// The every-mutation auditor's first-violation forensic report, if
    /// [`SimConfig::invariant_audit`] is on and a breach occurred.
    /// Retrieve after [`World::run_until`]/[`World::finalize`] (the
    /// consuming [`World::run`] drops the world).
    pub fn forensic_report(&self) -> Option<&ForensicReport> {
        self.auditor.as_ref().and_then(|a| a.report())
    }

    /// Schedules a crash-and-restart of `node` at time `at`: its MAC
    /// queue and in-progress receptions are discarded and the routing
    /// protocol's [`RoutingProtocol::handle_reboot`] hook runs.
    pub fn schedule_reboot(&mut self, at: SimTime, node: NodeId) {
        self.fel.schedule(at, Event::Reboot { node });
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The metrics gathered so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Read-only access to a node's protocol instance.
    pub fn protocol(&self, node: NodeId) -> &dyn RoutingProtocol {
        self.nodes[node.index()].protocol.as_ref()
    }

    /// Whether a frame from `sender` can reach `receiver` as far as the
    /// fault layer is concerned: the receiver is up and the link is not
    /// administratively severed. The *single* reachability predicate
    /// shared by [`World::propagate`] and [`World::neighbors`], so the
    /// radio model and the neighbor view cannot drift apart.
    fn link_usable(&self, sender: NodeId, receiver: NodeId) -> bool {
        match self.faults.as_ref() {
            Some(fs) => !fs.node_down(receiver) && !fs.link_severed(sender, receiver),
            None => true,
        }
    }

    /// Every node within radio range of `of` at the current time
    /// (excluding `of`), ascending, with exact squared distances —
    /// answered by the spatial index when enabled, by the linear scan
    /// otherwise. The two paths are bitwise identical (same set, same
    /// order, same distances); faults are *not* applied here.
    fn in_range_into(&self, of: NodeId, out: &mut Vec<(NodeId, f64)>) {
        let now = self.now;
        if let Some(grid) = self.grid.as_ref() {
            grid.borrow_mut().query_into(self.mobility.as_ref(), of, now, out);
            return;
        }
        out.clear();
        let p = self.mobility.position(of, now);
        let range_sq = self.cfg.phy.range_m * self.cfg.phy.range_m;
        out.extend((0..self.nodes.len() as u16).map(NodeId).filter(|&m| m != of).filter_map(|m| {
            let d = self.mobility.position(m, now).distance_sq(p);
            (d <= range_sq).then_some((m, d))
        }));
    }

    /// Node indices currently within radio range of `node` *and*
    /// reachable under the fault layer — crashed nodes and severed
    /// links are excluded exactly as [`World::propagate`] excludes
    /// them, and a crashed node sees no neighbors at all.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        if self.faults.as_ref().is_some_and(|fs| fs.node_down(node)) {
            return Vec::new();
        }
        let mut buf = Vec::new();
        self.in_range_into(node, &mut buf);
        buf.into_iter().map(|(m, _)| m).filter(|&m| self.link_usable(node, m)).collect()
    }

    /// Events the kernel has executed so far (perf telemetry; see the
    /// field note — intentionally not part of [`Metrics`]).
    pub fn events_executed(&self) -> u64 {
        self.events_executed
    }

    /// Routing-decision trace events emitted by protocols so far.
    /// Intentionally not part of [`Metrics`]: protocols emit only when
    /// a sink, auditor or flight recorder is attached.
    pub fn trace_events(&self) -> u64 {
        self.trace_events
    }

    /// Windows the parallel kernel fanned out over worker threads so
    /// far (always 0 with `workers ≤ 1`). Observational only — whether
    /// a window parallelises never changes its results, and this
    /// counter is intentionally not part of [`Metrics`].
    pub fn parallel_windows(&self) -> u64 {
        self.parallel_windows
    }

    /// A snapshot of the kernel profiler's accumulators, when
    /// [`SimConfig::profile`] is on. The snapshot pairs the profiler's
    /// own span counters with the kernel-truth dispatch counters
    /// (which also cover events replayed from parallel workers).
    /// Render with [`crate::prof::prof_to_jsonl`].
    pub fn prof_snapshot(&self) -> Option<ProfSnapshot> {
        self.prof
            .as_ref()
            .map(|p| p.snapshot(self.dispatch_counts, self.events_executed, self.parallel_windows))
    }

    /// The flight recorder's merged dump (all nodes' retained rings in
    /// global emission order); empty when no recorder is configured.
    pub fn flight_dump(&self) -> Vec<FlightEntry> {
        self.recorder.as_ref().map(|r| r.dump()).unwrap_or_default()
    }

    /// Time-series samples collected so far (one per elapsed
    /// [`crate::telemetry::TelemetryConfig::sample_interval`]).
    /// Retrieve after [`World::run_until`]; the consuming
    /// [`World::run`] drops the world.
    pub fn telemetry_series(&self) -> &[SeriesSample] {
        &self.series
    }

    /// The configured sampling interval, if the sampler is on.
    pub fn sample_interval(&self) -> Option<SimDuration> {
        self.cfg.telemetry.as_ref().and_then(|t| t.sample_interval)
    }

    /// Runs the loop auditor immediately; records and returns any
    /// violations.
    pub fn audit_now(&mut self) -> Vec<LoopViolation> {
        let tables: Vec<Vec<(NodeId, NodeId)>> =
            self.nodes.iter().map(|s| s.protocol.route_successors()).collect();
        let violations = find_loops(&tables);
        self.metrics.loop_violations += violations.len() as u64;
        if self.first_loop.is_none() {
            self.first_loop = violations.first().cloned();
        }
        violations
    }

    /// Runs the simulation to `cfg.duration` and returns the metrics.
    pub fn run(mut self) -> Metrics {
        let end = SimTime::ZERO + self.cfg.duration;
        self.run_until(end);
        self.finalize();
        self.metrics
    }

    /// Processes all events with timestamp ≤ `until`, then sets the
    /// clock to `until`. Useful for staged examples.
    ///
    /// With [`SimConfig::workers`] ≥ 2 the deterministic parallel
    /// kernel ([`crate::parallel`]) takes over; its output is
    /// byte-identical to this sequential loop.
    pub fn run_until(&mut self, until: SimTime) {
        if self.cfg.workers >= 2 {
            crate::parallel::run_until_parallel(self, until);
            return;
        }
        // The run loop is the profiler's bottom stack frame: its self
        // time (startup/teardown glue) is the only unattributed
        // residue. No-ops when profiling is off.
        Kern::prof_enter(self, PHASE_KERN_LOOP);
        self.run_events(until, true);
        Kern::prof_exit(self);
        self.now = until;
    }

    /// Executes every FEL event due within the bound, in order.
    /// `inclusive` executes events at exactly `bound` (the sequential
    /// `t ≤ until` loop); exclusive stops before it (the parallel
    /// kernel's `t < w_end` windows).
    ///
    /// When profiling is on, the loop runs as one fused span chain:
    /// the `fel_pop` span opens once, [`Profiler::switch`]es into
    /// each event's dispatch span and back, and only closes when
    /// nothing more is due — so loop glue (peeks, bound checks) is
    /// attributed to `fel_pop` (fetching the next event) and no
    /// per-event residue leaks into the parent frame. Identical
    /// observable behaviour to peek + pop + [`World::execute`].
    pub(crate) fn run_events(&mut self, bound: SimTime, inclusive: bool) {
        let due = |t: SimTime| (inclusive && t <= bound) || (!inclusive && t < bound);
        if self.prof.is_none() {
            while let Some(t) = self.fel.peek_time() {
                if !due(t) {
                    break;
                }
                let Some((t, event)) = self.fel.pop() else { break };
                self.execute(t, event);
            }
            return;
        }
        if let Some(p) = self.prof.as_mut() {
            p.enter(PHASE_FEL_POP);
        }
        loop {
            match self.fel.peek_time() {
                Some(t) if due(t) => {}
                _ => break,
            }
            let depth = self.fel.len() as u64;
            if let Some(p) = self.prof.as_mut() {
                p.record_hist(HIST_FEL_DEPTH, depth);
            }
            let Some((t, event)) = self.fel.pop() else { break };
            debug_assert!(t >= self.now, "event from the past");
            let kind = event.kind_index();
            if let Some(p) = self.prof.as_mut() {
                p.switch(DISPATCH_BASE + kind as u16);
            }
            self.now = t;
            self.events_executed += 1;
            self.dispatch_counts[kind] += 1;
            self.dispatch(event);
            if let Some(p) = self.prof.as_mut() {
                p.switch(PHASE_FEL_POP);
            }
        }
        if let Some(p) = self.prof.as_mut() {
            p.exit();
        }
    }

    /// Pops the next FEL event, under a profiler `fel_pop` span (and an
    /// FEL-depth histogram observation) when profiling is on. All
    /// kernel loops pop through here.
    pub(crate) fn pop_event(&mut self) -> Option<(SimTime, Event)> {
        if self.prof.is_some() {
            let depth = self.fel.len() as u64;
            if let Some(p) = self.prof.as_mut() {
                p.enter(PHASE_FEL_POP);
                p.record_hist(HIST_FEL_DEPTH, depth);
            }
            let out = self.fel.pop();
            if let Some(p) = self.prof.as_mut() {
                p.exit();
            }
            out
        } else {
            self.fel.pop()
        }
    }

    /// Executes one event popped from the FEL: advances the clock,
    /// counts it, and dispatches. The single entry point shared by the
    /// sequential loop above and the parallel kernel's sequential
    /// windows and canonical replay.
    pub(crate) fn execute(&mut self, t: SimTime, event: Event) {
        debug_assert!(t >= self.now, "event from the past");
        let kind = event.kind_index();
        if self.prof.is_some() {
            Kern::prof_enter(self, DISPATCH_BASE + kind as u16);
            self.now = t;
            self.events_executed += 1;
            self.dispatch_counts[kind] += 1;
            self.dispatch(event);
            Kern::prof_exit(self);
        } else {
            self.now = t;
            self.events_executed += 1;
            self.dispatch_counts[kind] += 1;
            self.dispatch(event);
        }
    }

    /// Replay-side bookkeeping for one event the parallel kernel
    /// executed on a worker: advance the clock and count it exactly as
    /// [`World::execute`] would have, without dispatching (the worker
    /// already ran the handler; its buffered effects follow).
    pub(crate) fn replay_begin(&mut self, t: SimTime, kind_index: usize) {
        debug_assert!(t >= self.now, "replayed event from the past");
        self.now = t;
        self.events_executed += 1;
        self.dispatch_counts[kind_index] += 1;
    }

    /// Final bookkeeping: per-node MAC counters, mean own sequence
    /// number, run length.
    pub fn finalize(&mut self) {
        self.metrics.ifq_drops = self.nodes.iter().map(|s| s.mac.ifq_drops).sum();
        self.metrics.mac_retry_failures = self.nodes.iter().map(|s| s.mac.retry_failures).sum();
        let mut sum = 0.0;
        let mut count = 0u64;
        for s in &self.nodes {
            if let Some(v) = s.protocol.own_seqno_value() {
                sum += v;
                count += 1;
            }
        }
        self.metrics.mean_own_seqno = if count > 0 { sum / count as f64 } else { 0.0 };
        self.metrics.sim_seconds = self.now.as_secs_f64();
    }

    /// Consumes the world and returns the metrics (after
    /// [`World::finalize`]).
    pub fn into_metrics(mut self) -> Metrics {
        self.finalize();
        self.metrics
    }

    // ----- event dispatch -------------------------------------------------

    fn dispatch(&mut self, event: Event) {
        // A crashed node is silent: its MAC, reception and timer events
        // are swallowed until the fault layer restarts it. A protocol
        // timer firing while the node is down is permanently lost —
        // honest state loss; `handle_reboot` must re-arm what it needs.
        if let Some(fs) = self.faults.as_ref() {
            let gated = match event {
                Event::MacKick(node)
                | Event::TxEnd { node, .. }
                | Event::RxEnd { node, .. }
                | Event::AckTimeout { node, .. }
                | Event::ProtocolTimer { node, .. }
                | Event::Reboot { node } => fs.node_down(node),
                _ => false,
            };
            if gated {
                return;
            }
        }
        match event {
            Event::MacKick(node) => mac_kick(self, node),
            Event::TxEnd { node, tx_id } => on_tx_end(self, node, tx_id),
            Event::RxEnd { node, tx_id } => on_rx_end(self, node, tx_id),
            Event::RxEndBatch { tx_id } => on_rx_end_batch(self, tx_id),
            Event::AckTimeout { node, tx_id } => on_ack_timeout(self, node, tx_id),
            Event::ProtocolTimer { node, token } => {
                call_protocol(self, node, |p, ctx| p.handle_timer(ctx, token));
            }
            Event::FlowPacket { flow } => self.on_flow_packet(flow),
            Event::FlowEnd { flow } => self.on_flow_end(flow),
            Event::AppSend { idx } => self.on_app_send(idx),
            Event::Reboot { node } => {
                let phy = self.cfg.phy.clone();
                {
                    let slot = &mut self.nodes[node.index()];
                    slot.mac.queue.clear();
                    slot.mac.state = MacState::Idle;
                    slot.mac.reset_cw(&phy);
                    slot.rx.clear();
                }
                self.call_protocol(node, |p, ctx| p.handle_reboot(ctx));
            }
            Event::Fault { idx } => self.on_fault(idx),
            Event::FaultRestart { node } => self.on_fault_restart(node),
            Event::Audit => {
                self.audit_now();
                if let Some(interval) = self.cfg.audit_interval {
                    let next = self.now + interval;
                    if next <= SimTime::ZERO + self.cfg.duration {
                        self.fel.schedule(next, Event::Audit);
                    }
                }
            }
            Event::TelemetrySample => {
                Kern::prof_enter(self, PHASE_TELEMETRY_SAMPLE);
                self.take_sample();
                Kern::prof_exit(self);
                if let Some(interval) = self.cfg.telemetry.as_ref().and_then(|t| t.sample_interval)
                {
                    let next = self.now + interval;
                    if next <= SimTime::ZERO + self.cfg.duration {
                        self.fel.schedule(next, Event::TelemetrySample);
                    }
                }
            }
        }
    }

    /// Snapshots one time-series sample. Strictly read-only with
    /// respect to simulation state: it touches metrics, route tables
    /// and queue depths, draws no randomness and mutates only the
    /// telemetry side (series, baseline).
    fn take_sample(&mut self) {
        let m = &self.metrics;
        let delivered = m.data_delivered;
        let originated = m.data_originated;
        let mut control_tx = [0u64; ControlKind::ALL.len()];
        for (i, k) in ControlKind::ALL.iter().enumerate() {
            control_tx[i] = m.control_tx.get(k).copied().unwrap_or(0);
        }
        let mut drops = [0u64; DropReason::ALL.len()];
        for (i, r) in DropReason::ALL.iter().enumerate() {
            drops[i] = m.drops.get(r).copied().unwrap_or(0);
        }
        let mut route_entries = 0u64;
        let mut route_valid = 0u64;
        for s in &self.nodes {
            let t = s.protocol.telemetry_snapshot();
            route_entries += t.entries;
            route_valid += t.valid;
        }
        let base = self.sample_base;
        let mut control_tx_w = [0u64; ControlKind::ALL.len()];
        for (w, (cur, prev)) in
            control_tx_w.iter_mut().zip(control_tx.iter().zip(base.control_tx.iter()))
        {
            *w = cur.saturating_sub(*prev);
        }
        self.sample_base = SampleBaseline { delivered, originated, control_tx };
        self.series.push(SeriesSample {
            at: self.now,
            delivered,
            originated,
            delivered_w: delivered.saturating_sub(base.delivered),
            originated_w: originated.saturating_sub(base.originated),
            control_tx_w,
            drops,
            route_entries,
            route_valid,
            fel_depth: self.fel.len() as u64,
            events_by_kind: self.dispatch_counts,
        });
    }

    // ----- fault injection ------------------------------------------------

    /// Applies the fault plan's entry `idx` (scheduled at world
    /// construction; see [`crate::faults`]).
    fn on_fault(&mut self, idx: u32) {
        let Some(action) = self.faults.as_ref().and_then(|fs| fs.action(idx as usize)).cloned()
        else {
            return;
        };
        self.metrics.faults_injected += 1;
        match action {
            FaultAction::CrashRestart { node, downtime } => {
                let crashed = self.faults.as_mut().is_some_and(|fs| fs.set_down(node));
                if !crashed {
                    return; // already down: a double crash is inert
                }
                self.emit(TraceEvent::FaultInjected { node, kind: FaultKind::Crash });
                self.crash_node(node);
                self.fel.schedule(self.now + downtime, Event::FaultRestart { node });
            }
            FaultAction::LinkDown { a, b } => {
                if let Some(fs) = self.faults.as_mut() {
                    fs.sever_link(a, b);
                }
                self.emit(TraceEvent::FaultInjected { node: a, kind: FaultKind::LinkDown });
            }
            FaultAction::LinkUp { a, b } => {
                if let Some(fs) = self.faults.as_mut() {
                    fs.restore_link(a, b);
                }
                self.emit(TraceEvent::FaultInjected { node: a, kind: FaultKind::LinkUp });
            }
            FaultAction::Partition { group } => {
                if let Some(fs) = self.faults.as_mut() {
                    fs.set_partition(&group);
                }
                let node = group.first().copied().unwrap_or(NodeId(0));
                self.emit(TraceEvent::FaultInjected { node, kind: FaultKind::Partition });
            }
            FaultAction::Heal => {
                if let Some(fs) = self.faults.as_mut() {
                    fs.heal();
                }
                self.emit(TraceEvent::FaultInjected { node: NodeId(0), kind: FaultKind::Heal });
            }
            FaultAction::LinkImpair { a, b, loss_ppm, corrupt_ppm } => {
                if let Some(fs) = self.faults.as_mut() {
                    fs.set_impairment(a, b, loss_ppm, corrupt_ppm);
                }
                self.emit(TraceEvent::FaultInjected { node: a, kind: FaultKind::Impair });
            }
            FaultAction::ReplayLastControl { node } => {
                if self.faults.as_ref().is_some_and(|fs| fs.node_down(node)) {
                    return;
                }
                let (mut frame, tx_id, uid) = {
                    let slot = &mut self.nodes[node.index()];
                    let Some(frame) = slot.last_control.clone() else {
                        return; // nothing sent yet
                    };
                    slot.uid_ctr += 1;
                    let uid = (u64::from(node.0) << 48) | slot.uid_ctr;
                    slot.tx_ctr += 1;
                    let tx_id = (u64::from(node.0) << 48) | slot.tx_ctr;
                    (frame, tx_id, uid)
                };
                // Fresh uid so MAC-level duplicate suppression does not
                // swallow the replay; protocols must reject the stale
                // content on their own (LDR: NDC, AODV: seen-cache).
                if let FramePayload::Packet(p) = &mut frame.payload {
                    p.uid = uid;
                }
                let dur = match &frame.payload {
                    FramePayload::Packet(p) => self.cfg.phy.tx_duration(p.wire_size()),
                    FramePayload::Ack { .. } => self.cfg.phy.ack_duration(),
                };
                self.emit(TraceEvent::FaultInjected { node, kind: FaultKind::Replay });
                propagate(self, node, frame, tx_id, dur);
            }
        }
    }

    /// Silences a crashing node: wipes its MAC queue and state, its
    /// in-progress receptions and its duplicate cache, and truncates
    /// any frame it was mid-transmission on (receivers see a corrupted
    /// tail).
    fn crash_node(&mut self, node: NodeId) {
        let phy = self.cfg.phy.clone();
        {
            let slot = &mut self.nodes[node.index()];
            slot.mac.queue.clear();
            slot.mac.state = MacState::Idle;
            slot.mac.ack_busy_until = SimTime::ZERO;
            slot.mac.reset_cw(&phy);
            slot.rx.clear();
            slot.recent = RecentCache::default();
        }
        let now = self.now;
        for m in 0..self.nodes.len() {
            if m == node.index() {
                continue;
            }
            for rx in &mut self.nodes[m].rx {
                if rx.frame.src == node && rx.end > now {
                    rx.corrupted = true;
                }
            }
        }
    }

    /// Brings a crashed node back up with total state loss and runs the
    /// protocol's restart callback.
    fn on_fault_restart(&mut self, node: NodeId) {
        let restarted = self.faults.as_mut().is_some_and(|fs| fs.set_up(node));
        if !restarted {
            return;
        }
        self.metrics.node_restarts += 1;
        let phy = self.cfg.phy.clone();
        {
            let slot = &mut self.nodes[node.index()];
            slot.mac.state = MacState::Idle;
            slot.mac.reset_cw(&phy);
            slot.rx.clear();
        }
        // Emit the restart before the callback runs: the invariant
        // auditor drops the lost incarnation's fd baselines on this
        // event, so the rebuilt table is judged as a fresh start.
        self.emit(TraceEvent::NodeRestarted { node });
        self.call_protocol(node, |p, ctx| p.handle_reboot(ctx));
    }

    // ----- traffic --------------------------------------------------------

    fn on_flow_packet(&mut self, slot: u32) {
        let Some(tcfg) = self.traffic_cfg.clone() else { return };
        let end = SimTime::ZERO + self.cfg.duration;
        let flow = &mut self.flows[slot as usize];
        if self.now >= flow.ends_at || self.now >= end {
            return;
        }
        let data = DataPacket {
            src: NodeId(flow.src),
            dst: NodeId(flow.dst),
            flow: flow.flow_id,
            seq: flow.next_seq,
            created: self.now,
            payload_len: tcfg.payload_len,
            ttl: DEFAULT_DATA_TTL,
            ext: Vec::new(),
        };
        flow.next_seq += 1;
        let src = NodeId(flow.src);
        let next_at = self.now + tcfg.packet_interval();
        if next_at < flow.ends_at && next_at < end {
            self.fel.schedule(next_at, Event::FlowPacket { flow: slot });
        }
        self.metrics.data_originated += 1;
        self.call_protocol(src, |p, ctx| p.handle_data_origination(ctx, data));
    }

    fn on_flow_end(&mut self, slot: u32) {
        let Some(tcfg) = self.traffic_cfg.clone() else { return };
        let end = SimTime::ZERO + self.cfg.duration;
        if self.now >= end {
            return;
        }
        let Some(state) = self.fresh_flow(&tcfg, self.now) else { return };
        let ends_at = state.ends_at;
        self.flows[slot as usize] = state;
        self.fel.schedule(self.now, Event::FlowPacket { flow: slot });
        if ends_at < end {
            self.fel.schedule(ends_at, Event::FlowEnd { flow: slot });
        }
    }

    fn on_app_send(&mut self, idx: u32) {
        let ap = self.manual[idx as usize].clone();
        let data = DataPacket {
            src: ap.src,
            dst: ap.dst,
            flow: ap.flow_id,
            seq: ap.seq,
            created: self.now,
            payload_len: ap.payload_len,
            ttl: DEFAULT_DATA_TTL,
            ext: Vec::new(),
        };
        self.metrics.data_originated += 1;
        self.call_protocol(ap.src, |p, ctx| p.handle_data_origination(ctx, data));
    }

    // ----- protocol callbacks and actions ----------------------------------

    fn call_protocol<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn RoutingProtocol, &mut Ctx),
    {
        call_protocol(self, node, f);
    }

    /// Re-checks the every-mutation invariants (fd monotonicity,
    /// successor acyclicity) if the auditor is attached. Route tables
    /// only mutate inside protocol callbacks, so running this after
    /// each one observes every table state the run passes through.
    fn invariant_check(&mut self) {
        if self.auditor.is_none() {
            return;
        }
        let dumps: Vec<Vec<crate::protocol::RouteDump>> =
            self.nodes.iter().map(|s| s.protocol.route_table_dump()).collect();
        let successors: Vec<Vec<(NodeId, NodeId)>> =
            self.nodes.iter().map(|s| s.protocol.route_successors()).collect();
        let had_report = self.auditor.as_ref().is_some_and(|a| a.report().is_some());
        let Some(aud) = self.auditor.as_mut() else { return };
        let new = aud.check(self.now, self.cfg.seed, &dumps, &successors);
        self.metrics.invariant_checks += 1;
        self.metrics.invariant_breaches += new;
        // First breach of the run: attach the flight recorder's dump to
        // the forensic report, so the failure ships with per-node
        // context beyond the auditor's own trace ring.
        if !had_report && new > 0 {
            if let Some(flight) = self.recorder.as_ref().map(|r| r.dump()) {
                if let Some(aud) = self.auditor.as_mut() {
                    aud.attach_flight(flight);
                }
            }
        }
    }
}

// ----- kernel abstraction ----------------------------------------------------

/// A buffered metrics mutation.
///
/// The sequential kernel applies these to [`Metrics`] immediately (see
/// [`apply_metric`]); the parallel kernel ([`crate::parallel`]) buffers
/// them per executed event and applies them in canonical replay order —
/// necessary because latency accumulation is floating-point addition,
/// whose result is order-sensitive bitwise.
#[derive(Clone, Debug)]
pub(crate) enum MetricOp {
    /// `record_delivery(flow, seq, latency)`.
    Delivered { flow: u32, seq: u32, latency: SimDuration },
    /// `record_drop(reason)`.
    Drop(DropReason),
    /// `record_control_tx(kind)`.
    ControlTx(ControlKind),
    /// `record_control_init(kind)`.
    ControlInit(ControlKind),
    /// `data_tx_hops += 1`.
    DataTxHop,
    /// `collisions += 1`.
    Collision,
    /// `record_proto(which, amount)`.
    Proto(crate::protocol::ProtoCounter, u64),
}

/// Applies one buffered metrics mutation.
pub(crate) fn apply_metric(m: &mut Metrics, op: MetricOp) {
    match op {
        MetricOp::Delivered { flow, seq, latency } => {
            m.record_delivery(flow, seq, latency);
        }
        MetricOp::Drop(reason) => m.record_drop(reason),
        MetricOp::ControlTx(kind) => m.record_control_tx(kind),
        MetricOp::ControlInit(kind) => m.record_control_init(kind),
        MetricOp::DataTxHop => m.data_tx_hops += 1,
        MetricOp::Collision => m.collisions += 1,
        MetricOp::Proto(which, amount) => m.record_proto(which, amount),
    }
}

/// The kernel surface the node-local event handlers run against.
///
/// The handlers below ([`mac_kick`], [`propagate`], [`on_rx_end`], …)
/// are generic over this trait so the exact same code drives both
/// execution contexts:
///
/// * [`World`] — the sequential kernel; every method applies its
///   side effect immediately.
/// * `Shard` in [`crate::parallel`] — a spatial shard on a worker
///   thread; reads go to the shard's borrowed node slots and cached
///   positions, while side effects (trace emission, metrics, future
///   events) are buffered and replayed canonically at the window
///   barrier.
///
/// Byte-identical parallel execution leans on this trait being the
/// *only* way handlers touch kernel state: any read the two impls
/// could answer differently (positions, fault fates) is either proven
/// identical or excluded by the parallel kernel's window
/// classification.
pub(crate) trait Kern {
    /// Current simulated time.
    fn now(&self) -> SimTime;
    /// Radio/PHY parameters.
    fn phy(&self) -> &PhyConfig;
    /// Fast-path mode ([`SimConfig::spatial_grid`]): elide no-op MAC
    /// kicks and batch per-transmission receptions.
    fn fast_path(&self) -> bool;
    /// Number of nodes in the world.
    fn n_nodes(&self) -> usize;
    /// Mutable access to a node's slot. Parallel shards only own their
    /// footprint's slots; a request outside it is a kernel bug.
    fn slot(&mut self, node: NodeId) -> &mut NodeSlot;
    /// Shared access to a node's slot.
    fn slot_ref(&self, node: NodeId) -> &NodeSlot;
    /// Whether a fault plan is installed at all.
    fn have_faults(&self) -> bool;
    /// Whether `node` is currently crashed.
    fn node_down(&self, node: NodeId) -> bool;
    /// Whether a frame from `sender` can reach `receiver` (receiver up,
    /// link not severed).
    fn link_usable(&self, sender: NodeId, receiver: NodeId) -> bool;
    /// Per-frame loss/corruption fate of an impaired link. Parallel
    /// windows never run with impairments active (classification sends
    /// those windows down the sequential path), so the shard impl
    /// answers `Deliver` without touching the faults RNG — exactly what
    /// the sequential kernel does for unimpaired links.
    fn rx_fate(&mut self, sender: NodeId, receiver: NodeId) -> RxFate;
    /// Nodes in radio range of `of` (excluding `of`), ascending, with
    /// exact squared distances.
    fn in_range_into(&mut self, of: NodeId, out: &mut Vec<(NodeId, f64)>);
    /// Takes the reusable range-query buffer.
    fn take_scratch(&mut self) -> Vec<(NodeId, f64)>;
    /// Returns the range-query buffer.
    fn put_scratch(&mut self, buf: Vec<(NodeId, f64)>);
    /// Schedules a future event.
    fn schedule(&mut self, at: SimTime, event: Event);
    /// Emits a trace event to the attached sinks.
    fn emit(&mut self, event: TraceEvent);
    /// Counts one protocol-emitted trace event.
    fn bump_trace_events(&mut self);
    /// Whether protocols should emit routing-decision traces.
    fn trace_on(&self) -> bool;
    /// Records a metrics mutation.
    fn metric(&mut self, op: MetricOp);
    /// Stores a fast-path receiver batch for `tx_id` (non-empty).
    fn store_batch(&mut self, tx_id: u64, receivers: Vec<NodeId>);
    /// Takes the receiver batch of `tx_id`, if present.
    fn take_batch(&mut self, tx_id: u64) -> Option<Vec<NodeId>>;
    /// Pops a spare receiver-list allocation.
    fn pool_pop(&mut self) -> Vec<NodeId>;
    /// Recycles a receiver-list allocation.
    fn pool_push(&mut self, buf: Vec<NodeId>);
    /// Takes an empty protocol-action buffer — recycled from the
    /// action pool when [`SimConfig::recycle_pools`] is on, freshly
    /// allocated otherwise. Exactly one buffer is in flight per
    /// protocol callback.
    fn take_actions(&mut self) -> Vec<Action>;
    /// Returns a drained action buffer to the pool.
    fn put_actions(&mut self, buf: Vec<Action>);
    /// Post-protocol-callback hook: the sequential kernel runs the
    /// every-event auditors here; parallel windows are classified
    /// sequential whenever those auditors are active, so the shard
    /// impl is a no-op.
    fn after_protocol(&mut self);
    /// Opens a profiler span ([`crate::prof`]). Default no-op: only
    /// the coordinating [`World`] carries a profiler — shard-side
    /// handler time is attributed to the `par_execute` phase at the
    /// coordinator, so worker threads never touch a wall clock.
    fn prof_enter(&mut self, _phase: u16) {}
    /// Closes the innermost profiler span. Default no-op (see
    /// [`Kern::prof_enter`]).
    fn prof_exit(&mut self) {}
}

impl Kern for World {
    fn now(&self) -> SimTime {
        self.now
    }
    fn phy(&self) -> &PhyConfig {
        &self.cfg.phy
    }
    fn fast_path(&self) -> bool {
        self.cfg.spatial_grid
    }
    fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
    fn slot(&mut self, node: NodeId) -> &mut NodeSlot {
        &mut self.nodes[node.index()]
    }
    fn slot_ref(&self, node: NodeId) -> &NodeSlot {
        &self.nodes[node.index()]
    }
    fn have_faults(&self) -> bool {
        self.faults.is_some()
    }
    fn node_down(&self, node: NodeId) -> bool {
        self.faults.as_ref().is_some_and(|fs| fs.node_down(node))
    }
    fn link_usable(&self, sender: NodeId, receiver: NodeId) -> bool {
        World::link_usable(self, sender, receiver)
    }
    fn rx_fate(&mut self, sender: NodeId, receiver: NodeId) -> RxFate {
        match self.faults.as_mut() {
            Some(fs) => fs.rx_draw(sender, receiver),
            None => RxFate::Deliver,
        }
    }
    fn in_range_into(&mut self, of: NodeId, out: &mut Vec<(NodeId, f64)>) {
        if self.prof.is_some() {
            let phase =
                if self.grid.is_some() { PHASE_NEIGHBOR_GRID } else { PHASE_NEIGHBOR_LINEAR };
            Kern::prof_enter(self, phase);
            World::in_range_into(self, of, out);
            Kern::prof_exit(self);
        } else {
            World::in_range_into(self, of, out);
        }
    }
    fn take_scratch(&mut self) -> Vec<(NodeId, f64)> {
        std::mem::take(&mut self.range_scratch)
    }
    fn put_scratch(&mut self, buf: Vec<(NodeId, f64)>) {
        self.range_scratch = buf;
    }
    fn schedule(&mut self, at: SimTime, event: Event) {
        if let Some(p) = self.prof.as_mut() {
            p.enter(PHASE_FEL_PUSH);
            self.fel.schedule(at, event);
            p.exit();
        } else {
            self.fel.schedule(at, event);
        }
    }
    fn emit(&mut self, event: TraceEvent) {
        if self.prof.is_some() {
            Kern::prof_enter(self, PHASE_TRACE_EMIT);
            World::emit(self, event);
            Kern::prof_exit(self);
        } else {
            World::emit(self, event);
        }
    }
    fn bump_trace_events(&mut self) {
        self.trace_events += 1;
    }
    fn trace_on(&self) -> bool {
        self.trace.is_some() || self.auditor.is_some() || self.recorder.is_some()
    }
    fn metric(&mut self, op: MetricOp) {
        apply_metric(&mut self.metrics, op);
    }
    fn store_batch(&mut self, tx_id: u64, receivers: Vec<NodeId>) {
        self.rx_batches.insert(tx_id, receivers);
    }
    fn take_batch(&mut self, tx_id: u64) -> Option<Vec<NodeId>> {
        self.rx_batches.remove(&tx_id)
    }
    fn pool_pop(&mut self) -> Vec<NodeId> {
        if self.cfg.recycle_pools {
            if let Some(p) = self.prof.as_mut() {
                p.pool_event(self.batch_pool.has_spare());
            }
            self.batch_pool.take()
        } else {
            if let Some(p) = self.prof.as_mut() {
                p.pool_event(false);
            }
            Vec::new()
        }
    }
    fn pool_push(&mut self, buf: Vec<NodeId>) {
        if self.cfg.recycle_pools {
            self.batch_pool.put(buf);
        }
    }
    fn take_actions(&mut self) -> Vec<Action> {
        if self.cfg.recycle_pools {
            if let Some(p) = self.prof.as_mut() {
                p.pool_event(self.action_pool.has_spare());
            }
            self.action_pool.take()
        } else {
            if let Some(p) = self.prof.as_mut() {
                p.pool_event(false);
            }
            Vec::new()
        }
    }
    fn put_actions(&mut self, buf: Vec<Action>) {
        if self.cfg.recycle_pools {
            self.action_pool.put(buf);
        }
    }
    fn after_protocol(&mut self) {
        if self.cfg.audit_every_event {
            self.audit_now();
        }
        self.invariant_check();
    }
    fn prof_enter(&mut self, phase: u16) {
        if let Some(p) = self.prof.as_mut() {
            p.enter(phase);
        }
    }
    fn prof_exit(&mut self) {
        if let Some(p) = self.prof.as_mut() {
            p.exit();
        }
    }
}

// ----- protocol callbacks and actions (generic over the kernel) -------------

pub(crate) fn call_protocol<K, F>(k: &mut K, node: NodeId, f: F)
where
    K: Kern,
    F: FnOnce(&mut dyn RoutingProtocol, &mut Ctx),
{
    // A crashed node runs no protocol code (this also drops CBR
    // originations at a down source).
    if k.node_down(node) {
        return;
    }
    let n = k.n_nodes();
    let now = k.now();
    let trace_on = k.trace_on();
    let mut actions = k.take_actions();
    k.prof_enter(PHASE_PROTOCOL);
    {
        let slot = k.slot(node);
        let mut ctx = Ctx::new(now, node, n, &mut slot.proto_rng, &mut actions);
        ctx.set_trace_enabled(trace_on);
        f(slot.protocol.as_mut(), &mut ctx);
    }
    k.prof_exit();
    apply_actions(k, node, &mut actions);
    k.put_actions(actions);
    k.after_protocol();
}

pub(crate) fn apply_actions<K: Kern>(k: &mut K, node: NodeId, actions: &mut Vec<Action>) {
    for action in actions.drain(..) {
        match action {
            Action::Broadcast { ctrl, initiated } => {
                if initiated {
                    k.metric(MetricOp::ControlInit(ctrl.kind));
                }
                enqueue_frame(k, node, None, PacketBody::Control(ctrl), false);
            }
            Action::UnicastControl { next, ctrl, initiated, notify_failure } => {
                if initiated {
                    k.metric(MetricOp::ControlInit(ctrl.kind));
                }
                enqueue_frame(k, node, Some(next), PacketBody::Control(ctrl), notify_failure);
            }
            Action::SendData { next, data } => {
                k.emit(TraceEvent::DataSend {
                    node,
                    next,
                    dst: data.dst,
                    flow: data.flow,
                    seq: data.seq,
                });
                enqueue_frame(k, node, Some(next), PacketBody::Data(data), true);
            }
            Action::Deliver { data } => {
                let latency = k.now().saturating_since(data.created);
                k.metric(MetricOp::Delivered { flow: data.flow, seq: data.seq, latency });
                k.emit(TraceEvent::Delivered { node, flow: data.flow, seq: data.seq });
            }
            Action::DropData { data, reason } => {
                k.metric(MetricOp::Drop(reason));
                k.emit(TraceEvent::DataDrop { node, flow: data.flow, seq: data.seq, reason });
            }
            Action::DropMalformed { kind } => {
                k.metric(MetricOp::Drop(DropReason::Malformed));
                k.emit(TraceEvent::ControlDrop { node, kind });
            }
            Action::SetTimer { delay, token } => {
                k.schedule(k.now() + delay, Event::ProtocolTimer { node, token });
            }
            Action::Count { which, amount } => {
                k.metric(MetricOp::Proto(which, amount));
            }
            Action::Trace(event) => {
                k.bump_trace_events();
                k.emit(event);
            }
        }
    }
}

pub(crate) fn enqueue_frame<K: Kern>(
    k: &mut K,
    node: NodeId,
    dst: Option<NodeId>,
    body: PacketBody,
    notify_failure: bool,
) {
    let cap = k.phy().ifq_cap;
    let slot = k.slot(node);
    slot.uid_ctr += 1;
    let uid = (u64::from(node.0) << 48) | slot.uid_ctr;
    let packet = Packet { uid, origin: node, body };
    let frame = OutFrame { packet, dst, notify_failure, attempts: 0, counted_tx: false };
    if slot.mac.enqueue(frame, cap) {
        kick_now(k, node);
    }
}

// ----- MAC state machine (generic over the kernel) ---------------------------

/// Schedules an immediate MAC wake-up for `node`.
///
/// In fast-path mode ([`SimConfig::spatial_grid`]) wake-ups that
/// are provably no-ops *at scheduling time* are elided instead —
/// they make up the majority of all events at paper scale. A
/// wake-up at `now` is a no-op when the MAC is
///
/// * `Idle` with an empty queue (the handler returns immediately;
///   any later enqueue schedules its own kick),
/// * in `Backoff` with `until > now` (early kicks return without
///   drawing randomness, and entering `Backoff` always scheduled a
///   kick at `until`),
/// * `Transmitting` or awaiting an ACK (dead match arms; every
///   transition out of these states — `TxEnd`, `AckTimeout`, ACK
///   reception — issues its own kick afterwards).
///
/// Elided events execute no code, mutate no state and draw no RNG,
/// and the relative FIFO order of the remaining same-timestamp
/// events is unchanged, so elision is observation-equivalent: runs
/// with and without it are byte-identical in metrics and trace.
pub(crate) fn kick_now<K: Kern>(k: &mut K, node: NodeId) {
    if k.fast_path() {
        let now = k.now();
        let mac = &k.slot_ref(node).mac;
        let noop = match mac.state {
            MacState::Idle => mac.queue.is_empty(),
            MacState::Backoff { until } => until > now,
            MacState::Transmitting { .. } | MacState::AwaitAck { .. } => true,
        };
        if noop {
            return;
        }
    }
    k.schedule(k.now(), Event::MacKick(node));
}

/// A node's medium is busy while any reception is in progress or its
/// own radio is occupied.
fn medium_busy_until<K: Kern>(k: &K, node: NodeId) -> Option<SimTime> {
    let now = k.now();
    let slot = k.slot_ref(node);
    let mut until: Option<SimTime> = None;
    for rx in &slot.rx {
        if rx.end > now {
            until = Some(until.map_or(rx.end, |u: SimTime| u.max(rx.end)));
        }
    }
    if slot.mac.ack_busy_until > now {
        let t = slot.mac.ack_busy_until;
        until = Some(until.map_or(t, |u| u.max(t)));
    }
    until
}

pub(crate) fn mac_kick<K: Kern>(k: &mut K, node: NodeId) {
    let now = k.now();
    match k.slot_ref(node).mac.state {
        MacState::Idle => {
            if k.slot_ref(node).mac.queue.is_empty() {
                return;
            }
            // Begin contention for the head frame.
            let phy = k.phy().clone();
            let slot = k.slot(node);
            let backoff = slot.mac.draw_backoff(&phy);
            let until = now + backoff;
            slot.mac.state = MacState::Backoff { until };
            k.schedule(until, Event::MacKick(node));
        }
        MacState::Backoff { until } => {
            if until > now {
                return; // early kick; the scheduled one will land at `until`
            }
            if k.slot_ref(node).mac.queue.is_empty() {
                k.slot(node).mac.state = MacState::Idle;
                return;
            }
            if let Some(busy_until) = medium_busy_until(k, node) {
                // Non-persistent CSMA: re-draw after the medium frees.
                let phy = k.phy().clone();
                let slot = k.slot(node);
                let backoff = slot.mac.draw_backoff(&phy);
                let until = busy_until + backoff;
                slot.mac.state = MacState::Backoff { until };
                k.schedule(until, Event::MacKick(node));
                return;
            }
            start_transmission(k, node);
        }
        MacState::Transmitting { .. } | MacState::AwaitAck { .. } => {}
    }
}

pub(crate) fn start_transmission<K: Kern>(k: &mut K, node: NodeId) {
    let now = k.now();
    let phy = k.phy().clone();
    let have_faults = k.have_faults();

    let (frame, dur, tx_id, metric_op) = {
        let slot = k.slot(node);
        slot.tx_ctr += 1;
        let tx_id = (u64::from(node.0) << 48) | slot.tx_ctr;
        let Some(head) = slot.mac.queue.front_mut() else { return };
        let dur = phy.tx_duration(head.packet.wire_size());
        let count_now = !head.counted_tx;
        head.counted_tx = true;
        let frame =
            Frame { src: node, dst: head.dst, payload: FramePayload::Packet(head.packet.clone()) };
        let metric_op = count_now.then_some(match &head.packet.body {
            PacketBody::Data(_) => MetricOp::DataTxHop,
            PacketBody::Control(c) => MetricOp::ControlTx(c.kind),
        });
        (frame, dur, tx_id, metric_op)
    };
    if let Some(op) = metric_op {
        k.metric(op);
    }
    let slot = k.slot(node);
    slot.mac.state = MacState::Transmitting { tx_id, until: now + dur };
    if have_faults {
        if let FramePayload::Packet(p) = &frame.payload {
            if matches!(p.body, PacketBody::Control(_)) {
                slot.last_control = Some(frame.clone());
            }
        }
    }
    k.schedule(now + dur, Event::TxEnd { node, tx_id });
    let (uid, dst) = match &frame.payload {
        FramePayload::Packet(p) => (Some(p.uid), frame.dst),
        FramePayload::Ack { .. } => (None, frame.dst),
    };
    k.emit(TraceEvent::TxStart { node, uid, dst });
    propagate(k, node, frame, tx_id, dur);
}

/// Emits a frame onto the medium: marks collisions and schedules
/// receptions at every node in range (per [`World::in_range_into`],
/// grid-indexed or linearly scanned — identical either way).
///
/// All of a transmission's receptions end at the same instant
/// `now + prop + dur` and their per-receiver `RxEnd` events are
/// scheduled back to back (consecutive sequence numbers), so no
/// other event can pop between them. In fast-path mode
/// ([`SimConfig::spatial_grid`]) they are therefore replaced by a
/// single [`Event::RxEndBatch`] that walks the same receivers in
/// the same ascending order — observation-equivalent, and it
/// removes the event queue's largest event class.
pub(crate) fn propagate<K: Kern>(
    k: &mut K,
    sender: NodeId,
    frame: Frame,
    tx_id: u64,
    dur: SimDuration,
) {
    let now = k.now();
    let prop = k.phy().prop_delay;
    let capture = k.phy().capture_distance_ratio;

    // A station transmitting cannot hear; corrupt its receptions.
    for rx in &mut k.slot(sender).rx {
        if rx.end > now {
            rx.corrupted = true;
        }
    }

    let mut in_range = k.take_scratch();
    k.in_range_into(sender, &mut in_range);
    let frame = Arc::new(frame);
    let end = now + prop + dur;
    let batching = k.fast_path();
    let mut receivers = if batching { k.pool_pop() } else { Vec::new() };
    for &(m, dist_sq) in &in_range {
        // Fault layer: crashed receivers and administratively
        // severed links hear nothing; impaired links draw per-frame
        // loss/corruption from the dedicated "faults" RNG stream.
        if !k.link_usable(sender, m) {
            continue;
        }
        let fate = k.rx_fate(sender, m);
        if fate == RxFate::Lose {
            continue;
        }
        let sender_dist = dist_sq.sqrt();
        let receiver = k.slot(m);
        // A station that is itself transmitting cannot receive.
        let mut corrupted = fate == RxFate::Corrupt || !receiver.mac.radio_free(now);
        // Overlapping receptions corrupt each other — unless the
        // earlier frame's transmitter is so much closer that the
        // receiver captures it (first-frame capture only).
        for rx in &mut receiver.rx {
            if rx.end > now {
                let captured = matches!(
                    capture,
                    Some(ratio) if rx.sender_dist * ratio <= sender_dist
                );
                if !captured {
                    rx.corrupted = true;
                }
                corrupted = true;
            }
        }
        receiver.rx.push(RxInProgress {
            tx_id,
            frame: Arc::clone(&frame),
            end,
            corrupted,
            sender_dist,
        });
        if batching {
            receivers.push(m);
        } else {
            k.schedule(end, Event::RxEnd { node: m, tx_id });
        }
    }
    k.put_scratch(in_range);
    if batching {
        if receivers.is_empty() {
            k.pool_push(receivers);
        } else {
            k.store_batch(tx_id, receivers);
            k.schedule(end, Event::RxEndBatch { tx_id });
        }
    }
}

/// Fast-path form of `RxEnd`: finish every reception of `tx_id`, in
/// the same ascending receiver order the per-receiver events would
/// have popped. The per-receiver crash gate of [`World::dispatch`]
/// is applied per receiver here, and nothing that runs during the
/// batch can crash a node or cancel a sibling reception mid-batch
/// (faults only fire from their own scheduled events), so the two
/// forms are observation-equivalent.
pub(crate) fn on_rx_end_batch<K: Kern>(k: &mut K, tx_id: u64) {
    let Some(mut receivers) = k.take_batch(tx_id) else { return };
    for &m in &receivers {
        // The per-receiver crash gate of `World::dispatch`.
        if k.node_down(m) {
            continue;
        }
        on_rx_end(k, m, tx_id);
    }
    receivers.clear();
    k.pool_push(receivers);
}

pub(crate) fn on_tx_end<K: Kern>(k: &mut K, node: NodeId, tx_id: u64) {
    let phy = k.phy().clone();
    let now = k.now();
    let slot = k.slot(node);
    match slot.mac.state {
        MacState::Transmitting { tx_id: t, .. } if t == tx_id => {}
        _ => return, // stale
    }
    let Some(head) = slot.mac.queue.front() else { return };
    if head.dst.is_none() {
        // Broadcast: one shot, done.
        slot.mac.queue.pop_front();
        slot.mac.reset_cw(&phy);
        slot.mac.state = MacState::Idle;
        kick_now(k, node);
    } else {
        let until = now + phy.ack_timeout();
        slot.mac.state = MacState::AwaitAck { tx_id, until };
        k.schedule(until, Event::AckTimeout { node, tx_id });
    }
}

pub(crate) fn on_ack_timeout<K: Kern>(k: &mut K, node: NodeId, tx_id: u64) {
    let phy = k.phy().clone();
    let verdict = {
        let slot = k.slot(node);
        match slot.mac.state {
            MacState::AwaitAck { tx_id: t, .. } if t == tx_id => {}
            _ => return, // acked already, or stale
        }
        slot.mac.note_attempt_failed(&phy)
    };
    match verdict {
        RetryVerdict::Retry => {
            let slot = k.slot(node);
            slot.mac.grow_cw(&phy);
            slot.mac.state = MacState::Idle;
            kick_now(k, node);
        }
        RetryVerdict::GiveUp => {
            let (packet, dst, notify) = {
                let slot = k.slot(node);
                slot.mac.reset_cw(&phy);
                slot.mac.state = MacState::Idle;
                let Some(frame) = slot.mac.queue.pop_front() else {
                    kick_now(k, node);
                    return;
                };
                (frame.packet, frame.dst, frame.notify_failure)
            };
            kick_now(k, node);
            // AwaitAck only ever arises for unicast frames, so `dst`
            // is present; a broadcast head here would be a kernel bug
            // and is simply not reported rather than panicking.
            let Some(next_hop) = dst else { return };
            k.emit(TraceEvent::MacGiveUp { node, dst: next_hop, uid: packet.uid });
            if notify {
                call_protocol(k, node, |p, ctx| p.handle_unicast_failure(ctx, next_hop, packet));
            }
        }
    }
}

pub(crate) fn on_rx_end<K: Kern>(k: &mut K, node: NodeId, tx_id: u64) {
    let phy = k.phy().clone();
    let rx = {
        let slot = k.slot(node);
        let Some(pos) = slot.rx.iter().position(|r| r.tx_id == tx_id) else {
            return;
        };
        slot.rx.swap_remove(pos)
    };
    if rx.corrupted {
        k.metric(MetricOp::Collision);
        k.emit(TraceEvent::RxCollision { node });
        kick_now(k, node);
        return;
    }
    let frame = rx.frame;
    let src = frame.src;
    let for_me = frame.dst == Some(node);
    let broadcast = frame.dst.is_none();
    if let FramePayload::Ack { acked_tx } = frame.payload {
        if for_me {
            let slot = k.slot(node);
            if let MacState::AwaitAck { tx_id: t, .. } = slot.mac.state {
                if t == acked_tx {
                    slot.mac.queue.pop_front();
                    slot.mac.reset_cw(&phy);
                    slot.mac.state = MacState::Idle;
                }
            }
        }
        kick_now(k, node);
        return;
    }
    let FramePayload::Packet(ref packet) = frame.payload else {
        return; // cannot occur: the ACK arm returned above
    };
    let uid = packet.uid;
    if for_me || broadcast {
        k.emit(TraceEvent::RxOk { node, uid: Some(uid) });
    }
    if for_me {
        send_ack(k, node, src, tx_id);
    }
    if for_me || broadcast {
        let fresh = k.slot(node).recent.insert(uid);
        if fresh {
            let prev_hop = src;
            // The last receiver to process this transmission holds the
            // only remaining `Arc` and can take the packet by value;
            // earlier receivers deep-clone (route vectors make that
            // clone expensive). Under the parallel kernel receivers of
            // one transmission may finish on different worker threads;
            // only *whether* the unwrap succeeds can vary with thread
            // timing, and both arms produce the identical packet, so
            // observable behavior stays deterministic.
            let pkt = match Arc::try_unwrap(frame) {
                Ok(owned) => match owned.payload {
                    FramePayload::Packet(p) => p,
                    FramePayload::Ack { .. } => return, // cannot occur (ACK handled above)
                },
                Err(shared) => match &shared.payload {
                    FramePayload::Packet(p) => p.clone(),
                    FramePayload::Ack { .. } => return, // cannot occur (ACK handled above)
                },
            };
            match pkt.body {
                PacketBody::Data(data) => {
                    call_protocol(k, node, |p, ctx| p.handle_data_packet(ctx, prev_hop, data));
                }
                PacketBody::Control(ctrl) => {
                    call_protocol(k, node, |p, ctx| {
                        p.handle_control(ctx, prev_hop, ctrl, broadcast)
                    });
                }
            }
        }
    }
    // Overheard unicast for someone else: ignored (no promiscuous
    // mode).
    kick_now(k, node);
}

/// Transmits a link-layer ACK SIFS after a successful reception.
/// ACKs ignore carrier sense (as in 802.11) but are skipped if this
/// radio is already busy sending.
pub(crate) fn send_ack<K: Kern>(k: &mut K, node: NodeId, to: NodeId, acked_tx: u64) {
    let phy = k.phy().clone();
    let now = k.now();
    if !k.slot_ref(node).mac.radio_free(now) {
        return;
    }
    let dur = phy.sifs + phy.ack_duration();
    let slot = k.slot(node);
    slot.mac.ack_busy_until = now + dur;
    slot.tx_ctr += 1;
    let tx_id = (u64::from(node.0) << 48) | slot.tx_ctr;
    let frame = Frame { src: node, dst: Some(to), payload: FramePayload::Ack { acked_tx } };
    propagate(k, node, frame, tx_id, dur);
    // Free the radio (and retry pending frames) when the ACK ends.
    k.schedule(now + dur, Event::MacKick(node));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PhyConfig, SimConfig};
    use crate::mobility::StaticMobility;
    use crate::protocol::DropReason;
    use crate::static_routing::StaticRouting;
    use crate::telemetry::TelemetryConfig;

    fn small_world(n: usize, spacing: f64, seed: u64) -> World {
        let mobility = StaticMobility::line(n, spacing);
        let cfg = SimConfig {
            phy: PhyConfig::default(),
            duration: SimDuration::from_secs(30),
            seed,
            audit_interval: None,
            audit_every_event: false,
            invariant_audit: false,
            fault_plan: None,
            spatial_grid: true,
            telemetry: None,
            workers: 1,
            recycle_pools: true,
            profile: false,
        };
        let topo = StaticRouting::tables_for_line(n);
        World::new(cfg, Box::new(mobility), move |id, _| {
            Box::new(StaticRouting::new(id, topo.clone()))
        })
    }

    #[test]
    fn single_hop_delivery() {
        let mut w = small_world(2, 100.0, 1);
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(1), 512);
        let m = w.run();
        assert_eq!(m.data_originated, 1);
        assert_eq!(m.data_delivered, 1);
        assert!(m.mean_latency_s() > 0.0 && m.mean_latency_s() < 0.1);
    }

    #[test]
    fn recycling_pools_engage_during_a_run() {
        let mut w = small_world(5, 200.0, 2);
        for i in 0..20 {
            w.schedule_app_packet(SimTime::from_millis(1000 + i * 100), NodeId(0), NodeId(4), 512);
        }
        w.run_until(SimTime::from_secs(30));
        assert!(
            w.action_pool.reuses() > 0,
            "with recycle_pools on, action buffers should be recycled, not reallocated"
        );
        assert!(w.batch_pool.reuses() > 0, "receiver batch lists should be recycled too");
        // Steady state: after warm-up, every take is a reuse; the gap
        // (true allocations) stays bounded by the free-list size.
        assert!(
            w.action_pool.takes() - w.action_pool.reuses() <= POOL_SPARES as u64,
            "allocations bounded by pool capacity: {} takes, {} reuses",
            w.action_pool.takes(),
            w.action_pool.reuses()
        );
        let m = w.into_metrics();
        assert_eq!(m.data_delivered, 20);
    }

    #[test]
    fn disabling_pools_keeps_them_cold() {
        let mobility = StaticMobility::line(3, 200.0);
        let cfg = SimConfig {
            duration: SimDuration::from_secs(30),
            seed: 2,
            recycle_pools: false,
            ..SimConfig::default()
        };
        let topo = StaticRouting::tables_for_line(3);
        let mut w = World::new(cfg, Box::new(mobility), move |id, _| {
            Box::new(StaticRouting::new(id, topo.clone()))
        });
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(2), 512);
        w.run_until(SimTime::from_secs(30));
        assert_eq!(w.action_pool.takes(), 0, "pool bypassed when recycle_pools is off");
        assert_eq!(w.batch_pool.takes(), 0);
        let m = w.into_metrics();
        assert_eq!(m.data_delivered, 1);
    }

    #[test]
    fn multi_hop_chain_delivery() {
        let mut w = small_world(5, 200.0, 2);
        for i in 0..20 {
            w.schedule_app_packet(SimTime::from_millis(1000 + i * 100), NodeId(0), NodeId(4), 512);
        }
        let m = w.run();
        assert_eq!(m.data_originated, 20);
        assert_eq!(m.data_delivered, 20, "chain should deliver everything");
        assert!(m.data_tx_hops >= 80, "4 hops x 20 packets");
    }

    #[test]
    fn out_of_range_nodes_cannot_communicate() {
        // 400 m spacing > 275 m range: no neighbours, MAC gives up.
        let mut w = small_world(2, 400.0, 3);
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(1), 512);
        let m = w.run();
        assert_eq!(m.data_delivered, 0);
        assert_eq!(m.mac_retry_failures, 1);
    }

    #[test]
    fn neighbors_respect_range() {
        let w = small_world(4, 200.0, 4);
        // 200 m spacing, 275 m range: only adjacent nodes are neighbours.
        // `neighbors` is a read-only query: `w` needs no `mut`.
        assert_eq!(w.neighbors(NodeId(0)), vec![NodeId(1)]);
        assert_eq!(w.neighbors(NodeId(1)), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed: u64| {
            let mut w = small_world(5, 200.0, seed);
            for i in 0..50 {
                w.schedule_app_packet(
                    SimTime::from_millis(500 + i * 37),
                    NodeId(0),
                    NodeId(4),
                    512,
                );
            }
            let m = w.run();
            (m.data_delivered, m.data_tx_hops, m.collisions)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn cbr_traffic_generates_and_delivers() {
        let mobility = StaticMobility::line(3, 150.0);
        let cfg =
            SimConfig { duration: SimDuration::from_secs(60), seed: 5, ..SimConfig::default() };
        let topo = StaticRouting::tables_for_line(3);
        let mut w = World::new(cfg, Box::new(mobility), move |id, _| {
            Box::new(StaticRouting::new(id, topo.clone()))
        });
        w.with_cbr(TrafficConfig::paper(2));
        let m = w.run();
        assert!(m.data_originated > 100, "expected CBR load, got {}", m.data_originated);
        assert!(
            m.delivery_ratio() > 0.95,
            "static 3-node chain should deliver nearly everything: {}",
            m.delivery_ratio()
        );
        assert!(m.sim_seconds == 60.0);
    }

    #[test]
    fn contention_produces_some_collisions() {
        // Many nodes in range of each other, heavy broadcast-free data
        // load: the DCF should still mostly cope, but hidden terminals
        // don't exist here so collisions stay modest. Use a longer chain
        // with cross traffic to induce hidden-terminal collisions.
        // Saturating bidirectional load over a 5-hop chain: hidden
        // terminals must produce collisions.
        let mut w = small_world(6, 250.0, 9);
        for i in 0..200u64 {
            w.schedule_app_packet(SimTime::from_millis(500 + i * 11), NodeId(0), NodeId(5), 512);
            w.schedule_app_packet(SimTime::from_millis(505 + i * 11), NodeId(5), NodeId(0), 512);
        }
        let m = w.run();
        assert!(m.collisions > 0, "hidden terminals should collide sometimes");
        assert!(m.data_delivered > 0, "some packets must still get through");
    }

    #[test]
    fn moderate_load_mostly_recovered_by_retries() {
        let mut w = small_world(6, 250.0, 9);
        for i in 0..200u64 {
            w.schedule_app_packet(SimTime::from_millis(500 + i * 60), NodeId(0), NodeId(5), 512);
            w.schedule_app_packet(SimTime::from_millis(530 + i * 60), NodeId(5), NodeId(0), 512);
        }
        let m = w.run();
        assert!(
            m.delivery_ratio() > 0.5,
            "MAC retries should recover most frames at moderate load: {}",
            m.delivery_ratio()
        );
    }

    #[test]
    fn ttl_expiry_counted_as_drop() {
        // StaticRouting drops when TTL runs out; build a tiny TTL packet
        // by scheduling across a chain longer than the TTL. DEFAULT TTL
        // is 64 so instead verify NoRoute drops for unreachable dest.
        let mut w = small_world(2, 100.0, 11);
        // destination 5 does not exist in the static tables (n=2): the
        // protocol reports NoRoute.
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(1), 512);
        w.schedule_app_packet(SimTime::from_secs(2), NodeId(1), NodeId(0), 512);
        let m = w.run();
        assert_eq!(m.data_delivered, 2);
        assert_eq!(m.drops.get(&DropReason::NoRoute), None);
    }

    #[test]
    fn trace_records_packet_lifecycle() {
        use crate::trace::{MemoryTrace, TraceEvent};
        let shared = MemoryTrace::shared();
        let mut w = small_world(3, 200.0, 15);
        w.set_trace(Box::new(shared.clone()));
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(2), 512);
        let m = w.run();
        assert_eq!(m.data_delivered, 1);
        let tr = shared.lock().unwrap();
        let tx = tr.count(|e| matches!(e, TraceEvent::TxStart { uid: Some(_), .. }));
        let rx = tr.count(|e| matches!(e, TraceEvent::RxOk { .. }));
        let delivered = tr.count(|e| matches!(e, TraceEvent::Delivered { .. }));
        assert!(tx >= 2, "two data hops: {tx}");
        assert!(rx >= 2, "each hop received: {rx}");
        assert_eq!(delivered, 1);
        // Events are time-ordered.
        assert!(tr.events().windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn capture_lets_the_closer_frame_survive_hidden_terminal_overlap() {
        use crate::geometry::Position;
        use crate::mobility::StaticMobility;
        // R(0,0) hears A(-50,0) and B(250,0); A and B are 300 m apart
        // and cannot carrier-sense each other (hidden terminals). A's
        // frame starts first and its transmitter is >3.16x closer, so
        // with capture enabled R still decodes it.
        let run = |capture: Option<f64>| {
            let positions = vec![
                Position::new(0.0, 0.0),   // R
                Position::new(-50.0, 0.0), // A
                Position::new(250.0, 0.0), // B
            ];
            let adj = vec![vec![1, 2], vec![0], vec![0]];
            let topo = StaticRouting::from_adjacency(&adj);
            let cfg = SimConfig {
                phy: PhyConfig { capture_distance_ratio: capture, ..PhyConfig::default() },
                duration: SimDuration::from_secs(10),
                seed: 5,
                ..SimConfig::default()
            };
            let mut w = World::new(cfg, Box::new(StaticMobility::new(positions)), move |id, _| {
                Box::new(StaticRouting::new(id, topo.clone()))
            });
            // Repeat the overlapping pair many times so backoff
            // randomness cannot hide the effect.
            for k in 0..50u64 {
                let base = 100_000_000 + k * 100_000_000; // every 100 ms
                w.fel.schedule(SimTime::from_nanos(base), Event::AppSend { idx: 0 });
                // B starts 500 us into A's ~2.4 ms frame.
                w.fel.schedule(SimTime::from_nanos(base + 500_000), Event::AppSend { idx: 1 });
                // (re-use two manual packets scheduled below)
            }
            w.manual.push(AppPacket {
                src: NodeId(1),
                dst: NodeId(0),
                payload_len: 512,
                flow_id: MANUAL_FLOW_BASE,
                seq: 0,
            });
            w.manual.push(AppPacket {
                src: NodeId(2),
                dst: NodeId(0),
                payload_len: 512,
                flow_id: MANUAL_FLOW_BASE + 1,
                seq: 0,
            });
            w.run()
        };
        let without = run(None);
        let with = run(Some(3.16));
        assert!(
            with.collisions < without.collisions,
            "capture must reduce corrupted receptions: {} !< {}",
            with.collisions,
            without.collisions
        );
        assert!(without.collisions > 0, "hidden terminals must collide at all");
    }

    fn faulted_world(n: usize, plan: crate::faults::FaultPlan, seed: u64) -> World {
        let mobility = StaticMobility::line(n, 200.0);
        let cfg = SimConfig {
            duration: SimDuration::from_secs(10),
            seed,
            fault_plan: Some(plan),
            ..SimConfig::default()
        };
        let topo = StaticRouting::tables_for_line(n);
        World::new(cfg, Box::new(mobility), move |id, _| {
            Box::new(StaticRouting::new(id, topo.clone()))
        })
    }

    #[test]
    fn crash_silences_relay_until_restart() {
        use crate::faults::{FaultAction, FaultPlan};
        let plan = FaultPlan::new(vec![(
            SimTime::from_secs(2),
            FaultAction::CrashRestart { node: NodeId(1), downtime: SimDuration::from_secs(2) },
        )]);
        let mut w = faulted_world(3, plan, 21);
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(2), 512); // before crash
        w.schedule_app_packet(SimTime::from_millis(2500), NodeId(0), NodeId(2), 512); // relay down
        w.schedule_app_packet(SimTime::from_secs(6), NodeId(0), NodeId(2), 512); // after restart
        let m = w.run();
        assert_eq!(m.data_delivered, 2, "only the mid-crash packet is lost");
        assert_eq!(m.faults_injected, 1);
        assert_eq!(m.node_restarts, 1);
        assert_eq!(m.mac_retry_failures, 1, "sender gives up on the dead relay");
    }

    #[test]
    fn admin_link_cut_blocks_until_restored() {
        use crate::faults::{FaultAction, FaultPlan};
        let plan = FaultPlan::new(vec![
            (SimTime::from_millis(1500), FaultAction::LinkDown { a: NodeId(0), b: NodeId(1) }),
            (SimTime::from_millis(3500), FaultAction::LinkUp { a: NodeId(1), b: NodeId(0) }),
        ]);
        let mut w = faulted_world(2, plan, 22);
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(1), 512);
        w.schedule_app_packet(SimTime::from_secs(2), NodeId(0), NodeId(1), 512);
        w.schedule_app_packet(SimTime::from_secs(4), NodeId(0), NodeId(1), 512);
        let m = w.run();
        assert_eq!(m.data_delivered, 2, "the cut swallows exactly the middle packet");
        assert_eq!(m.faults_injected, 2);
        assert_eq!(m.node_restarts, 0);
    }

    #[test]
    fn partition_and_heal_gate_cross_traffic() {
        use crate::faults::{FaultAction, FaultPlan};
        let plan = FaultPlan::new(vec![
            (SimTime::from_millis(1500), FaultAction::Partition { group: vec![NodeId(0)] }),
            (SimTime::from_millis(3500), FaultAction::Heal),
        ]);
        let mut w = faulted_world(2, plan, 23);
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(1), 512);
        w.schedule_app_packet(SimTime::from_secs(2), NodeId(0), NodeId(1), 512);
        w.schedule_app_packet(SimTime::from_secs(4), NodeId(0), NodeId(1), 512);
        let m = w.run();
        assert_eq!(m.data_delivered, 2);
    }

    #[test]
    fn total_loss_impairment_blocks_a_link() {
        use crate::faults::{FaultAction, FaultPlan};
        let plan = FaultPlan::new(vec![(
            SimTime::from_millis(500),
            FaultAction::LinkImpair {
                a: NodeId(0),
                b: NodeId(1),
                loss_ppm: 1_000_000,
                corrupt_ppm: 0,
            },
        )]);
        let mut w = faulted_world(2, plan, 24);
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(1), 512);
        let m = w.run();
        assert_eq!(m.data_delivered, 0);
        assert_eq!(m.mac_retry_failures, 1);
    }

    #[test]
    fn faulted_runs_replay_identically() {
        use crate::faults::{FaultIntensity, FaultPlan};
        let run = || {
            let plan = FaultPlan::random(
                &mut SimRng::stream(77, "plan"),
                &FaultIntensity::level(5, SimDuration::from_secs(10), 2),
            );
            let mut w = faulted_world(5, plan, 25);
            for i in 0..30u64 {
                w.schedule_app_packet(
                    SimTime::from_millis(500 + i * 123),
                    NodeId(0),
                    NodeId(4),
                    512,
                );
            }
            let m = w.run();
            (
                m.data_delivered,
                m.data_tx_hops,
                m.collisions,
                m.mac_retry_failures,
                m.faults_injected,
                m.node_restarts,
                m.latency_sum_s.to_bits(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn neighbors_exclude_crashed_nodes_and_severed_links() {
        use crate::faults::{FaultAction, FaultPlan};
        // line(4, 200): with 275 m range only adjacent nodes are
        // neighbors. Crash node 1 and sever 2–3 at t=2.
        let plan = FaultPlan::new(vec![
            (
                SimTime::from_secs(2),
                FaultAction::CrashRestart {
                    node: NodeId(1),
                    downtime: SimDuration::from_secs(100),
                },
            ),
            (SimTime::from_secs(2), FaultAction::LinkDown { a: NodeId(2), b: NodeId(3) }),
        ]);
        let mut w = faulted_world(4, plan, 31);
        assert_eq!(w.neighbors(NodeId(0)), vec![NodeId(1)], "pre-fault view intact");
        w.run_until(SimTime::from_secs(3));
        // The crashed node vanishes from every neighbor's view — the
        // radio model (`propagate`) has always dropped frames to it;
        // `neighbors` must agree.
        assert_eq!(w.neighbors(NodeId(0)), vec![], "crashed node still visible");
        // A crashed node sees no one either.
        assert_eq!(w.neighbors(NodeId(1)), vec![]);
        // The severed link is gone from both endpoints' views (and
        // node 2's other neighbor, 1, is down).
        assert_eq!(w.neighbors(NodeId(2)), vec![]);
        assert_eq!(w.neighbors(NodeId(3)), vec![]);
    }

    #[test]
    fn single_node_cbr_is_skipped_not_hung() {
        // A 1-node world has no valid (src, dst) pair: flow setup must
        // skip rather than rejection-sample forever.
        let mut w = small_world(1, 100.0, 41);
        w.with_cbr(TrafficConfig::paper(3));
        let m = w.run();
        assert_eq!(m.data_originated, 0);
        assert_eq!(m.data_delivered, 0);
        assert_eq!(m.sim_seconds, 30.0);
    }

    #[test]
    fn grid_and_linear_worlds_are_byte_identical() {
        use crate::geometry::Terrain;
        use crate::mobility::RandomWaypoint;
        use crate::trace::MemoryTrace;
        let run = |spatial_grid: bool| {
            let mobility = RandomWaypoint::new(
                20,
                Terrain::new(800.0, 300.0),
                SimDuration::from_secs(5),
                1.0,
                20.0,
                SimRng::stream(9, "mobility"),
            );
            let cfg = SimConfig {
                duration: SimDuration::from_secs(20),
                seed: 9,
                spatial_grid,
                ..SimConfig::default()
            };
            let topo = StaticRouting::tables_for_line(20);
            let mut w = World::new(cfg, Box::new(mobility), move |id, _| {
                Box::new(StaticRouting::new(id, topo.clone()))
            });
            let shared = MemoryTrace::shared();
            w.set_trace(Box::new(shared.clone()));
            w.with_cbr(TrafficConfig::paper(4));
            let end = SimTime::ZERO + SimDuration::from_secs(20);
            w.run_until(end);
            w.finalize();
            let metrics = w.metrics().clone();
            let events = w.events_executed();
            let trace: Vec<_> = shared.lock().map(|t| t.events().to_vec()).unwrap_or_default();
            (metrics, trace, events)
        };
        let (gm, gt, ge) = run(true);
        let (lm, lt, le) = run(false);
        assert_eq!(gm, lm, "metrics must be byte-identical");
        assert_eq!(gt, lt, "traces must be byte-identical");
        assert!(ge < le, "fast path should execute fewer events ({ge} !< {le})");
    }

    #[test]
    fn audit_finds_no_loops_in_static_routing() {
        let mobility = StaticMobility::line(4, 150.0);
        let cfg = SimConfig {
            duration: SimDuration::from_secs(10),
            seed: 13,
            audit_interval: Some(SimDuration::from_secs(1)),
            ..SimConfig::default()
        };
        let topo = StaticRouting::tables_for_line(4);
        let mut w = World::new(cfg, Box::new(mobility), move |id, _| {
            Box::new(StaticRouting::new(id, topo.clone()))
        });
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(3), 512);
        let m = w.run();
        assert_eq!(m.loop_violations, 0);
    }

    fn telemetry_world(n: usize, seed: u64, telemetry: Option<TelemetryConfig>) -> World {
        let mobility = StaticMobility::line(n, 150.0);
        let cfg = SimConfig {
            duration: SimDuration::from_secs(10),
            seed,
            telemetry,
            ..SimConfig::default()
        };
        let topo = StaticRouting::tables_for_line(n);
        let mut w = World::new(cfg, Box::new(mobility), move |id, _| {
            Box::new(StaticRouting::new(id, topo.clone()))
        });
        w.with_cbr(crate::traffic::TrafficConfig::paper(2));
        w
    }

    #[test]
    fn telemetry_is_observation_pure() {
        // Attaching the flight recorder and the sampler must not change
        // one bit of the run's metrics.
        let plain = {
            let mut w = telemetry_world(4, 21, None);
            w.run_until(SimTime::from_secs(10));
            w.finalize();
            w.metrics().clone()
        };
        let telemetered = {
            let mut w = telemetry_world(4, 21, Some(TelemetryConfig::default()));
            w.run_until(SimTime::from_secs(10));
            w.finalize();
            assert!(!w.telemetry_series().is_empty(), "sampler took no samples");
            assert!(!w.flight_dump().is_empty(), "flight recorder stayed empty");
            w.metrics().clone()
        };
        assert_eq!(plain, telemetered, "telemetry changed observable behaviour");
    }

    #[test]
    fn sampler_fires_on_the_configured_cadence() {
        let interval = SimDuration::from_millis(2500);
        let mut w = telemetry_world(
            4,
            3,
            Some(TelemetryConfig { flight_recorder_depth: 8, sample_interval: Some(interval) }),
        );
        w.run_until(SimTime::from_secs(10));
        w.finalize();
        let series = w.telemetry_series();
        // 10 s at 2.5 s: samples at 2.5, 5, 7.5, 10.
        assert_eq!(series.len(), 4, "{series:?}");
        for (i, s) in series.iter().enumerate() {
            assert_eq!(s.at, SimTime::ZERO + SimDuration::from_millis(2500 * (i as u64 + 1)));
            assert!(s.delivered >= s.delivered_w);
        }
        let last = series.last().expect("non-empty");
        assert!(last.originated > 0, "CBR traffic should have originated packets");
        assert!(
            last.events_by_kind.iter().sum::<u64>() > 0,
            "kernel dispatch counts should be snapshotted"
        );
        assert_eq!(w.sample_interval(), Some(interval));
    }

    #[test]
    fn flight_recorder_keeps_a_bounded_global_tail() {
        let mut w = telemetry_world(
            4,
            9,
            Some(TelemetryConfig { flight_recorder_depth: 4, sample_interval: None }),
        );
        w.run_until(SimTime::from_secs(10));
        w.finalize();
        let dump = w.flight_dump();
        assert!(!dump.is_empty());
        assert!(dump.len() <= 4 * 4, "per-node rings must bound the dump");
        assert!(dump.windows(2).all(|p| p[0].seq < p[1].seq), "dump must be seq-ordered");
        // Static routing emits no routing-decision events; the recorder
        // filled from kernel link-layer events alone.
        assert_eq!(w.trace_events(), 0);
        assert!(dump.iter().all(|e| !e.event.is_routing()));
    }
}
