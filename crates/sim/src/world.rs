//! The discrete-event simulation kernel.
//!
//! [`World`] owns the nodes (MAC + routing protocol instances), the
//! future event list, the radio medium, mobility, CBR traffic and
//! metrics, and advances simulated time by executing events in
//! timestamp order. All randomness is drawn from named sub-streams of
//! the run seed, so a `(configuration, seed)` pair replays exactly.

use crate::audit::{ForensicReport, InvariantAuditor};
use crate::config::SimConfig;
use crate::event::{Event, EventQueue};
use crate::faults::{FaultAction, FaultState, RxFate};
use crate::loopcheck::{find_loops, LoopViolation};
use crate::mac::{Mac, MacState, OutFrame, RetryVerdict};
use crate::metrics::Metrics;
use crate::mobility::MobilityModel;
use crate::packet::{DataPacket, NodeId, Packet, PacketBody, DEFAULT_DATA_TTL};
use crate::protocol::{Action, Ctx, RoutingProtocol};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{FaultKind, TraceEvent, TraceSink};
use crate::traffic::{FlowState, TrafficConfig};
use std::collections::{HashSet, VecDeque};

/// Link-layer frame payload.
#[derive(Clone, Debug)]
enum FramePayload {
    /// A network-layer packet.
    Packet(Packet),
    /// A link-layer acknowledgement for transmission `acked_tx`.
    Ack { acked_tx: u64 },
}

/// A link-layer frame on the air.
#[derive(Clone, Debug)]
struct Frame {
    src: NodeId,
    /// `None` is a link broadcast.
    dst: Option<NodeId>,
    payload: FramePayload,
}

/// A reception in progress at one node.
#[derive(Clone, Debug)]
struct RxInProgress {
    tx_id: u64,
    frame: Frame,
    end: SimTime,
    corrupted: bool,
    /// Transmitter-to-receiver distance, for the capture model.
    sender_dist: f64,
}

/// Bounded remember-set for MAC-level duplicate suppression.
#[derive(Debug, Default)]
struct RecentCache {
    order: VecDeque<u64>,
    set: HashSet<u64>,
}

impl RecentCache {
    /// Inserts a uid; returns `false` if it was already present.
    fn insert(&mut self, uid: u64) -> bool {
        if !self.set.insert(uid) {
            return false;
        }
        self.order.push_back(uid);
        if self.order.len() > 128 {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        true
    }
}

struct NodeSlot {
    mac: Mac,
    protocol: Box<dyn RoutingProtocol>,
    proto_rng: SimRng,
    rx: Vec<RxInProgress>,
    recent: RecentCache,
}

/// A manually injected application packet (tests and examples).
#[derive(Clone, Debug)]
struct AppPacket {
    src: NodeId,
    dst: NodeId,
    payload_len: u16,
    flow_id: u32,
    seq: u32,
}

/// Flow ids at or above this value belong to manually injected packets.
const MANUAL_FLOW_BASE: u32 = 1 << 31;

/// The simulator.
pub struct World {
    cfg: SimConfig,
    mobility: Box<dyn MobilityModel>,
    nodes: Vec<NodeSlot>,
    fel: EventQueue,
    now: SimTime,
    next_uid: u64,
    next_tx_id: u64,
    metrics: Metrics,
    traffic_cfg: Option<TrafficConfig>,
    flows: Vec<FlowState>,
    next_flow_id: u32,
    traffic_rng: SimRng,
    manual: Vec<AppPacket>,
    next_manual_flow: u32,
    trace: Option<Box<dyn TraceSink>>,
    auditor: Option<InvariantAuditor>,
    /// Runtime state of the executing fault plan, if one is installed.
    faults: Option<FaultState>,
    /// Last control frame each node put on the air (kept only while a
    /// fault plan is installed, for stale-advert replay injection).
    last_control: Vec<Option<Frame>>,
    /// First routing loop the auditor found, if any.
    pub first_loop: Option<LoopViolation>,
}

impl World {
    /// Builds a world with one protocol instance per mobility-model node.
    ///
    /// The factory is called once per node with `(node, n_nodes)`.
    ///
    /// # Panics
    ///
    /// Panics if the mobility model covers zero nodes.
    pub fn new<F>(cfg: SimConfig, mobility: Box<dyn MobilityModel>, mut factory: F) -> Self
    where
        F: FnMut(NodeId, usize) -> Box<dyn RoutingProtocol>,
    {
        let n = mobility.len();
        assert!(n > 0, "world needs at least one node");
        assert!(n <= u16::MAX as usize, "too many nodes");
        let seed = cfg.seed;
        let nodes = (0..n)
            .map(|i| {
                let id = NodeId(i as u16);
                NodeSlot {
                    mac: Mac::new(cfg.phy.cw_min, SimRng::stream(seed, &format!("mac-{i}"))),
                    protocol: factory(id, n),
                    proto_rng: SimRng::stream(seed, &format!("proto-{i}")),
                    rx: Vec::new(),
                    recent: RecentCache::default(),
                }
            })
            .collect();
        let auditor = cfg.invariant_audit.then(InvariantAuditor::new);
        let last_control = vec![None; n];
        let mut world = World {
            traffic_rng: SimRng::stream(seed, "traffic"),
            cfg,
            mobility,
            nodes,
            fel: EventQueue::new(),
            now: SimTime::ZERO,
            next_uid: 1,
            next_tx_id: 1,
            metrics: Metrics::new(),
            traffic_cfg: None,
            flows: Vec::new(),
            next_flow_id: 0,
            manual: Vec::new(),
            next_manual_flow: MANUAL_FLOW_BASE,
            trace: None,
            auditor,
            faults: None,
            last_control,
            first_loop: None,
        };
        if let Some(interval) = world.cfg.audit_interval {
            world.fel.schedule(SimTime::ZERO + interval, Event::Audit);
        }
        if let Some(plan) = world.cfg.fault_plan.clone() {
            for (i, (at, _)) in plan.entries().iter().enumerate() {
                world.fel.schedule(*at, Event::Fault { idx: i as u32 });
            }
            world.faults = Some(FaultState::new(plan, n, SimRng::stream(seed, "faults")));
        }
        for i in 0..n {
            world.call_protocol(NodeId(i as u16), |p, ctx| p.start(ctx));
        }
        world
    }

    /// Attaches the CBR workload (call before [`World::run`]).
    pub fn with_cbr(&mut self, tcfg: TrafficConfig) {
        assert!(self.nodes.len() >= 2, "CBR traffic needs at least two nodes");
        for slot in 0..tcfg.n_flows {
            let start = SimTime::ZERO
                + SimDuration::from_nanos(
                    self.traffic_rng.below(tcfg.start_window.as_nanos().max(1)),
                );
            let state = self.fresh_flow(&tcfg, start);
            self.flows.push(state);
            self.fel.schedule(start, Event::FlowPacket { flow: slot as u32 });
            self.fel.schedule(self.flows[slot].ends_at, Event::FlowEnd { flow: slot as u32 });
        }
        self.traffic_cfg = Some(tcfg);
    }

    fn fresh_flow(&mut self, tcfg: &TrafficConfig, now: SimTime) -> FlowState {
        let n = self.nodes.len() as u64;
        let src = self.traffic_rng.below(n) as u16;
        let mut dst = self.traffic_rng.below(n) as u16;
        while dst == src {
            dst = self.traffic_rng.below(n) as u16;
        }
        let life = SimDuration::from_secs_f64(self.traffic_rng.exponential(tcfg.mean_flow_secs));
        let flow_id = self.next_flow_id;
        self.next_flow_id += 1;
        FlowState { flow_id, src, dst, next_seq: 0, ends_at: now + life }
    }

    /// Schedules a single application packet from `src` to `dst` at
    /// time `at` (for tests and worked examples). Returns the flow id
    /// used in metrics.
    pub fn schedule_app_packet(
        &mut self,
        at: SimTime,
        src: NodeId,
        dst: NodeId,
        payload_len: u16,
    ) -> u32 {
        let flow_id = self.next_manual_flow;
        self.next_manual_flow += 1;
        let idx = self.manual.len() as u32;
        self.manual.push(AppPacket { src, dst, payload_len, flow_id, seq: 0 });
        self.fel.schedule(at, Event::AppSend { idx });
        flow_id
    }

    /// Attaches a trace sink receiving both packet-lifecycle and
    /// routing-decision events (see [`crate::trace`]). Attaching a sink
    /// enables protocol-side emission for subsequent callbacks.
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    fn emit(&mut self, event: TraceEvent) {
        if let Some(a) = self.auditor.as_mut() {
            a.observe(self.now, &event);
        }
        if let Some(t) = self.trace.as_mut() {
            t.record(self.now, event);
        }
    }

    /// The every-mutation auditor's first-violation forensic report, if
    /// [`SimConfig::invariant_audit`] is on and a breach occurred.
    /// Retrieve after [`World::run_until`]/[`World::finalize`] (the
    /// consuming [`World::run`] drops the world).
    pub fn forensic_report(&self) -> Option<&ForensicReport> {
        self.auditor.as_ref().and_then(|a| a.report())
    }

    /// Schedules a crash-and-restart of `node` at time `at`: its MAC
    /// queue and in-progress receptions are discarded and the routing
    /// protocol's [`RoutingProtocol::handle_reboot`] hook runs.
    pub fn schedule_reboot(&mut self, at: SimTime, node: NodeId) {
        self.fel.schedule(at, Event::Reboot { node });
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The metrics gathered so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Read-only access to a node's protocol instance.
    pub fn protocol(&self, node: NodeId) -> &dyn RoutingProtocol {
        self.nodes[node.index()].protocol.as_ref()
    }

    /// Node indices currently within radio range of `node`.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let now = self.now;
        let p = self.mobility.position(node, now);
        let range_sq = self.cfg.phy.range_m * self.cfg.phy.range_m;
        (0..self.nodes.len() as u16)
            .map(NodeId)
            .filter(|&m| m != node)
            .filter(|&m| self.mobility.position(m, now).distance_sq(p) <= range_sq)
            .collect()
    }

    /// Runs the loop auditor immediately; records and returns any
    /// violations.
    pub fn audit_now(&mut self) -> Vec<LoopViolation> {
        let tables: Vec<Vec<(NodeId, NodeId)>> =
            self.nodes.iter().map(|s| s.protocol.route_successors()).collect();
        let violations = find_loops(&tables);
        self.metrics.loop_violations += violations.len() as u64;
        if self.first_loop.is_none() {
            self.first_loop = violations.first().cloned();
        }
        violations
    }

    /// Runs the simulation to `cfg.duration` and returns the metrics.
    pub fn run(mut self) -> Metrics {
        let end = SimTime::ZERO + self.cfg.duration;
        self.run_until(end);
        self.finalize();
        self.metrics
    }

    /// Processes all events with timestamp ≤ `until`, then sets the
    /// clock to `until`. Useful for staged examples.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.fel.peek_time() {
            if t > until {
                break;
            }
            let Some((t, event)) = self.fel.pop() else { break };
            debug_assert!(t >= self.now, "event from the past");
            self.now = t;
            self.dispatch(event);
        }
        self.now = until;
    }

    /// Final bookkeeping: per-node MAC counters, mean own sequence
    /// number, run length.
    pub fn finalize(&mut self) {
        self.metrics.ifq_drops = self.nodes.iter().map(|s| s.mac.ifq_drops).sum();
        self.metrics.mac_retry_failures = self.nodes.iter().map(|s| s.mac.retry_failures).sum();
        let mut sum = 0.0;
        let mut count = 0u64;
        for s in &self.nodes {
            if let Some(v) = s.protocol.own_seqno_value() {
                sum += v;
                count += 1;
            }
        }
        self.metrics.mean_own_seqno = if count > 0 { sum / count as f64 } else { 0.0 };
        self.metrics.sim_seconds = self.now.as_secs_f64();
    }

    /// Consumes the world and returns the metrics (after
    /// [`World::finalize`]).
    pub fn into_metrics(mut self) -> Metrics {
        self.finalize();
        self.metrics
    }

    // ----- event dispatch -------------------------------------------------

    fn dispatch(&mut self, event: Event) {
        // A crashed node is silent: its MAC, reception and timer events
        // are swallowed until the fault layer restarts it. A protocol
        // timer firing while the node is down is permanently lost —
        // honest state loss; `handle_reboot` must re-arm what it needs.
        if let Some(fs) = self.faults.as_ref() {
            let gated = match event {
                Event::MacKick(node)
                | Event::TxEnd { node, .. }
                | Event::RxEnd { node, .. }
                | Event::AckTimeout { node, .. }
                | Event::ProtocolTimer { node, .. }
                | Event::Reboot { node } => fs.node_down(node),
                _ => false,
            };
            if gated {
                return;
            }
        }
        match event {
            Event::MacKick(node) => self.mac_kick(node),
            Event::TxEnd { node, tx_id } => self.on_tx_end(node, tx_id),
            Event::RxEnd { node, tx_id } => self.on_rx_end(node, tx_id),
            Event::AckTimeout { node, tx_id } => self.on_ack_timeout(node, tx_id),
            Event::ProtocolTimer { node, token } => {
                self.call_protocol(node, |p, ctx| p.handle_timer(ctx, token));
            }
            Event::FlowPacket { flow } => self.on_flow_packet(flow),
            Event::FlowEnd { flow } => self.on_flow_end(flow),
            Event::AppSend { idx } => self.on_app_send(idx),
            Event::Reboot { node } => {
                let phy = self.cfg.phy.clone();
                {
                    let slot = &mut self.nodes[node.index()];
                    slot.mac.queue.clear();
                    slot.mac.state = MacState::Idle;
                    slot.mac.reset_cw(&phy);
                    slot.rx.clear();
                }
                self.call_protocol(node, |p, ctx| p.handle_reboot(ctx));
            }
            Event::Fault { idx } => self.on_fault(idx),
            Event::FaultRestart { node } => self.on_fault_restart(node),
            Event::Audit => {
                self.audit_now();
                if let Some(interval) = self.cfg.audit_interval {
                    let next = self.now + interval;
                    if next <= SimTime::ZERO + self.cfg.duration {
                        self.fel.schedule(next, Event::Audit);
                    }
                }
            }
        }
    }

    // ----- fault injection ------------------------------------------------

    /// Applies the fault plan's entry `idx` (scheduled at world
    /// construction; see [`crate::faults`]).
    fn on_fault(&mut self, idx: u32) {
        let Some(action) = self.faults.as_ref().and_then(|fs| fs.action(idx as usize)).cloned()
        else {
            return;
        };
        self.metrics.faults_injected += 1;
        match action {
            FaultAction::CrashRestart { node, downtime } => {
                let crashed = self.faults.as_mut().is_some_and(|fs| fs.set_down(node));
                if !crashed {
                    return; // already down: a double crash is inert
                }
                self.emit(TraceEvent::FaultInjected { node, kind: FaultKind::Crash });
                self.crash_node(node);
                self.fel.schedule(self.now + downtime, Event::FaultRestart { node });
            }
            FaultAction::LinkDown { a, b } => {
                if let Some(fs) = self.faults.as_mut() {
                    fs.sever_link(a, b);
                }
                self.emit(TraceEvent::FaultInjected { node: a, kind: FaultKind::LinkDown });
            }
            FaultAction::LinkUp { a, b } => {
                if let Some(fs) = self.faults.as_mut() {
                    fs.restore_link(a, b);
                }
                self.emit(TraceEvent::FaultInjected { node: a, kind: FaultKind::LinkUp });
            }
            FaultAction::Partition { group } => {
                if let Some(fs) = self.faults.as_mut() {
                    fs.set_partition(&group);
                }
                let node = group.first().copied().unwrap_or(NodeId(0));
                self.emit(TraceEvent::FaultInjected { node, kind: FaultKind::Partition });
            }
            FaultAction::Heal => {
                if let Some(fs) = self.faults.as_mut() {
                    fs.heal();
                }
                self.emit(TraceEvent::FaultInjected { node: NodeId(0), kind: FaultKind::Heal });
            }
            FaultAction::LinkImpair { a, b, loss_ppm, corrupt_ppm } => {
                if let Some(fs) = self.faults.as_mut() {
                    fs.set_impairment(a, b, loss_ppm, corrupt_ppm);
                }
                self.emit(TraceEvent::FaultInjected { node: a, kind: FaultKind::Impair });
            }
            FaultAction::ReplayLastControl { node } => {
                if self.faults.as_ref().is_some_and(|fs| fs.node_down(node)) {
                    return;
                }
                let Some(mut frame) = self.last_control[node.index()].clone() else {
                    return; // nothing sent yet
                };
                // Fresh uid so MAC-level duplicate suppression does not
                // swallow the replay; protocols must reject the stale
                // content on their own (LDR: NDC, AODV: seen-cache).
                if let FramePayload::Packet(p) = &mut frame.payload {
                    p.uid = self.next_uid;
                    self.next_uid += 1;
                }
                let dur = match &frame.payload {
                    FramePayload::Packet(p) => self.cfg.phy.tx_duration(p.wire_size()),
                    FramePayload::Ack { .. } => self.cfg.phy.ack_duration(),
                };
                let tx_id = self.next_tx_id;
                self.next_tx_id += 1;
                self.emit(TraceEvent::FaultInjected { node, kind: FaultKind::Replay });
                self.propagate(node, frame, tx_id, dur);
            }
        }
    }

    /// Silences a crashing node: wipes its MAC queue and state, its
    /// in-progress receptions and its duplicate cache, and truncates
    /// any frame it was mid-transmission on (receivers see a corrupted
    /// tail).
    fn crash_node(&mut self, node: NodeId) {
        let phy = self.cfg.phy.clone();
        {
            let slot = &mut self.nodes[node.index()];
            slot.mac.queue.clear();
            slot.mac.state = MacState::Idle;
            slot.mac.ack_busy_until = SimTime::ZERO;
            slot.mac.reset_cw(&phy);
            slot.rx.clear();
            slot.recent = RecentCache::default();
        }
        let now = self.now;
        for m in 0..self.nodes.len() {
            if m == node.index() {
                continue;
            }
            for rx in &mut self.nodes[m].rx {
                if rx.frame.src == node && rx.end > now {
                    rx.corrupted = true;
                }
            }
        }
    }

    /// Brings a crashed node back up with total state loss and runs the
    /// protocol's restart callback.
    fn on_fault_restart(&mut self, node: NodeId) {
        let restarted = self.faults.as_mut().is_some_and(|fs| fs.set_up(node));
        if !restarted {
            return;
        }
        self.metrics.node_restarts += 1;
        let phy = self.cfg.phy.clone();
        {
            let slot = &mut self.nodes[node.index()];
            slot.mac.state = MacState::Idle;
            slot.mac.reset_cw(&phy);
            slot.rx.clear();
        }
        // Emit the restart before the callback runs: the invariant
        // auditor drops the lost incarnation's fd baselines on this
        // event, so the rebuilt table is judged as a fresh start.
        self.emit(TraceEvent::NodeRestarted { node });
        self.call_protocol(node, |p, ctx| p.handle_reboot(ctx));
    }

    // ----- traffic --------------------------------------------------------

    fn on_flow_packet(&mut self, slot: u32) {
        let Some(tcfg) = self.traffic_cfg.clone() else { return };
        let end = SimTime::ZERO + self.cfg.duration;
        let flow = &mut self.flows[slot as usize];
        if self.now >= flow.ends_at || self.now >= end {
            return;
        }
        let data = DataPacket {
            src: NodeId(flow.src),
            dst: NodeId(flow.dst),
            flow: flow.flow_id,
            seq: flow.next_seq,
            created: self.now,
            payload_len: tcfg.payload_len,
            ttl: DEFAULT_DATA_TTL,
            ext: Vec::new(),
        };
        flow.next_seq += 1;
        let src = NodeId(flow.src);
        let next_at = self.now + tcfg.packet_interval();
        if next_at < flow.ends_at && next_at < end {
            self.fel.schedule(next_at, Event::FlowPacket { flow: slot });
        }
        self.metrics.data_originated += 1;
        self.call_protocol(src, |p, ctx| p.handle_data_origination(ctx, data));
    }

    fn on_flow_end(&mut self, slot: u32) {
        let Some(tcfg) = self.traffic_cfg.clone() else { return };
        let end = SimTime::ZERO + self.cfg.duration;
        if self.now >= end {
            return;
        }
        let state = self.fresh_flow(&tcfg, self.now);
        let ends_at = state.ends_at;
        self.flows[slot as usize] = state;
        self.fel.schedule(self.now, Event::FlowPacket { flow: slot });
        if ends_at < end {
            self.fel.schedule(ends_at, Event::FlowEnd { flow: slot });
        }
    }

    fn on_app_send(&mut self, idx: u32) {
        let ap = self.manual[idx as usize].clone();
        let data = DataPacket {
            src: ap.src,
            dst: ap.dst,
            flow: ap.flow_id,
            seq: ap.seq,
            created: self.now,
            payload_len: ap.payload_len,
            ttl: DEFAULT_DATA_TTL,
            ext: Vec::new(),
        };
        self.metrics.data_originated += 1;
        self.call_protocol(ap.src, |p, ctx| p.handle_data_origination(ctx, data));
    }

    // ----- protocol callbacks and actions ----------------------------------

    fn call_protocol<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn RoutingProtocol, &mut Ctx),
    {
        // A crashed node runs no protocol code (this also drops CBR
        // originations at a down source).
        if self.faults.as_ref().is_some_and(|fs| fs.node_down(node)) {
            return;
        }
        let n = self.nodes.len();
        let now = self.now;
        let trace_on = self.trace.is_some() || self.auditor.is_some();
        let mut actions = Vec::new();
        {
            let slot = &mut self.nodes[node.index()];
            let mut ctx = Ctx::new(now, node, n, &mut slot.proto_rng, &mut actions);
            ctx.set_trace_enabled(trace_on);
            f(slot.protocol.as_mut(), &mut ctx);
        }
        self.apply_actions(node, actions);
        if self.cfg.audit_every_event {
            self.audit_now();
        }
        self.invariant_check();
    }

    /// Re-checks the every-mutation invariants (fd monotonicity,
    /// successor acyclicity) if the auditor is attached. Route tables
    /// only mutate inside protocol callbacks, so running this after
    /// each one observes every table state the run passes through.
    fn invariant_check(&mut self) {
        if self.auditor.is_none() {
            return;
        }
        let dumps: Vec<Vec<crate::protocol::RouteDump>> =
            self.nodes.iter().map(|s| s.protocol.route_table_dump()).collect();
        let successors: Vec<Vec<(NodeId, NodeId)>> =
            self.nodes.iter().map(|s| s.protocol.route_successors()).collect();
        let Some(aud) = self.auditor.as_mut() else { return };
        let new = aud.check(self.now, self.cfg.seed, &dumps, &successors);
        self.metrics.invariant_checks += 1;
        self.metrics.invariant_breaches += new;
    }

    fn apply_actions(&mut self, node: NodeId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Broadcast { ctrl, initiated } => {
                    if initiated {
                        self.metrics.record_control_init(ctrl.kind);
                    }
                    self.enqueue_frame(node, None, PacketBody::Control(ctrl), false);
                }
                Action::UnicastControl { next, ctrl, initiated, notify_failure } => {
                    if initiated {
                        self.metrics.record_control_init(ctrl.kind);
                    }
                    self.enqueue_frame(node, Some(next), PacketBody::Control(ctrl), notify_failure);
                }
                Action::SendData { next, data } => {
                    self.enqueue_frame(node, Some(next), PacketBody::Data(data), true);
                }
                Action::Deliver { data } => {
                    let latency = self.now.saturating_since(data.created);
                    self.metrics.record_delivery(data.flow, data.seq, latency);
                    self.emit(TraceEvent::Delivered { node, flow: data.flow, seq: data.seq });
                }
                Action::DropData { data: _, reason } => {
                    self.metrics.record_drop(reason);
                }
                Action::SetTimer { delay, token } => {
                    self.fel.schedule(self.now + delay, Event::ProtocolTimer { node, token });
                }
                Action::Count { which, amount } => {
                    self.metrics.record_proto(which, amount);
                }
                Action::Trace(event) => {
                    self.metrics.trace_events += 1;
                    self.emit(event);
                }
            }
        }
    }

    fn enqueue_frame(
        &mut self,
        node: NodeId,
        dst: Option<NodeId>,
        body: PacketBody,
        notify_failure: bool,
    ) {
        let uid = self.next_uid;
        self.next_uid += 1;
        let packet = Packet { uid, origin: node, body };
        let frame = OutFrame { packet, dst, notify_failure, attempts: 0, counted_tx: false };
        let cap = self.cfg.phy.ifq_cap;
        let slot = &mut self.nodes[node.index()];
        if slot.mac.enqueue(frame, cap) {
            self.fel.schedule(self.now, Event::MacKick(node));
        }
    }

    // ----- MAC state machine ------------------------------------------------

    /// A node's medium is busy while any reception is in progress or its
    /// own radio is occupied.
    fn medium_busy_until(&self, node: NodeId) -> Option<SimTime> {
        let slot = &self.nodes[node.index()];
        let mut until: Option<SimTime> = None;
        for rx in &slot.rx {
            if rx.end > self.now {
                until = Some(until.map_or(rx.end, |u: SimTime| u.max(rx.end)));
            }
        }
        if slot.mac.ack_busy_until > self.now {
            let t = slot.mac.ack_busy_until;
            until = Some(until.map_or(t, |u| u.max(t)));
        }
        until
    }

    fn mac_kick(&mut self, node: NodeId) {
        let now = self.now;
        match self.nodes[node.index()].mac.state {
            MacState::Idle => {
                if self.nodes[node.index()].mac.queue.is_empty() {
                    return;
                }
                // Begin contention for the head frame.
                let phy = self.cfg.phy.clone();
                let slot = &mut self.nodes[node.index()];
                let backoff = slot.mac.draw_backoff(&phy);
                let until = now + backoff;
                slot.mac.state = MacState::Backoff { until };
                self.fel.schedule(until, Event::MacKick(node));
            }
            MacState::Backoff { until } => {
                if until > now {
                    return; // early kick; the scheduled one will land at `until`
                }
                if self.nodes[node.index()].mac.queue.is_empty() {
                    self.nodes[node.index()].mac.state = MacState::Idle;
                    return;
                }
                if let Some(busy_until) = self.medium_busy_until(node) {
                    // Non-persistent CSMA: re-draw after the medium frees.
                    let phy = self.cfg.phy.clone();
                    let slot = &mut self.nodes[node.index()];
                    let backoff = slot.mac.draw_backoff(&phy);
                    let until = busy_until + backoff;
                    slot.mac.state = MacState::Backoff { until };
                    self.fel.schedule(until, Event::MacKick(node));
                    return;
                }
                self.start_transmission(node);
            }
            MacState::Transmitting { .. } | MacState::AwaitAck { .. } => {}
        }
    }

    fn start_transmission(&mut self, node: NodeId) {
        let now = self.now;
        let phy = self.cfg.phy.clone();
        let tx_id = self.next_tx_id;
        self.next_tx_id += 1;

        let (frame, dur) = {
            let slot = &mut self.nodes[node.index()];
            let Some(head) = slot.mac.queue.front_mut() else { return };
            let dur = phy.tx_duration(head.packet.wire_size());
            let count_now = !head.counted_tx;
            head.counted_tx = true;
            let frame = Frame {
                src: node,
                dst: head.dst,
                payload: FramePayload::Packet(head.packet.clone()),
            };
            if count_now {
                match &head.packet.body {
                    PacketBody::Data(_) => self.metrics.data_tx_hops += 1,
                    PacketBody::Control(c) => self.metrics.record_control_tx(c.kind),
                }
            }
            (frame, dur)
        };
        self.nodes[node.index()].mac.state = MacState::Transmitting { tx_id, until: now + dur };
        self.fel.schedule(now + dur, Event::TxEnd { node, tx_id });
        if self.faults.is_some() {
            if let FramePayload::Packet(p) = &frame.payload {
                if matches!(p.body, PacketBody::Control(_)) {
                    self.last_control[node.index()] = Some(frame.clone());
                }
            }
        }
        let (uid, dst) = match &frame.payload {
            FramePayload::Packet(p) => (Some(p.uid), frame.dst),
            FramePayload::Ack { .. } => (None, frame.dst),
        };
        self.emit(TraceEvent::TxStart { node, uid, dst });
        self.propagate(node, frame, tx_id, dur);
    }

    /// Emits a frame onto the medium: marks collisions and schedules
    /// receptions at every node in range.
    fn propagate(&mut self, sender: NodeId, frame: Frame, tx_id: u64, dur: SimDuration) {
        let now = self.now;
        let phy = &self.cfg.phy;
        let prop = phy.prop_delay;
        let range_sq = phy.range_m * phy.range_m;
        let sender_pos = self.mobility.position(sender, now);

        // A station transmitting cannot hear; corrupt its receptions.
        for rx in &mut self.nodes[sender.index()].rx {
            if rx.end > now {
                rx.corrupted = true;
            }
        }

        let capture = phy.capture_distance_ratio;
        let n = self.nodes.len() as u16;
        let end = now + prop + dur;
        for m in (0..n).map(NodeId) {
            if m == sender {
                continue;
            }
            let dist_sq = self.mobility.position(m, now).distance_sq(sender_pos);
            if dist_sq > range_sq {
                continue;
            }
            // Fault layer: crashed receivers and administratively
            // severed links hear nothing; impaired links draw per-frame
            // loss/corruption from the dedicated "faults" RNG stream.
            if let Some(fs) = self.faults.as_ref() {
                if fs.node_down(m) || fs.link_severed(sender, m) {
                    continue;
                }
            }
            let fate = match self.faults.as_mut() {
                Some(fs) => fs.rx_draw(sender, m),
                None => RxFate::Deliver,
            };
            if fate == RxFate::Lose {
                continue;
            }
            let sender_dist = dist_sq.sqrt();
            let receiver = &mut self.nodes[m.index()];
            // A station that is itself transmitting cannot receive.
            let mut corrupted = fate == RxFate::Corrupt || !receiver.mac.radio_free(now);
            // Overlapping receptions corrupt each other — unless the
            // earlier frame's transmitter is so much closer that the
            // receiver captures it (first-frame capture only).
            for rx in &mut receiver.rx {
                if rx.end > now {
                    let captured = matches!(
                        capture,
                        Some(ratio) if rx.sender_dist * ratio <= sender_dist
                    );
                    if !captured {
                        rx.corrupted = true;
                    }
                    corrupted = true;
                }
            }
            receiver.rx.push(RxInProgress {
                tx_id,
                frame: frame.clone(),
                end,
                corrupted,
                sender_dist,
            });
            self.fel.schedule(end, Event::RxEnd { node: m, tx_id });
        }
    }

    fn on_tx_end(&mut self, node: NodeId, tx_id: u64) {
        let phy = self.cfg.phy.clone();
        let now = self.now;
        let slot = &mut self.nodes[node.index()];
        match slot.mac.state {
            MacState::Transmitting { tx_id: t, .. } if t == tx_id => {}
            _ => return, // stale
        }
        let Some(head) = slot.mac.queue.front() else { return };
        if head.dst.is_none() {
            // Broadcast: one shot, done.
            slot.mac.queue.pop_front();
            slot.mac.reset_cw(&phy);
            slot.mac.state = MacState::Idle;
            self.fel.schedule(now, Event::MacKick(node));
        } else {
            let until = now + phy.ack_timeout();
            slot.mac.state = MacState::AwaitAck { tx_id, until };
            self.fel.schedule(until, Event::AckTimeout { node, tx_id });
        }
    }

    fn on_ack_timeout(&mut self, node: NodeId, tx_id: u64) {
        let phy = self.cfg.phy.clone();
        let now = self.now;
        let verdict = {
            let slot = &mut self.nodes[node.index()];
            match slot.mac.state {
                MacState::AwaitAck { tx_id: t, .. } if t == tx_id => {}
                _ => return, // acked already, or stale
            }
            slot.mac.note_attempt_failed(&phy)
        };
        match verdict {
            RetryVerdict::Retry => {
                let slot = &mut self.nodes[node.index()];
                slot.mac.grow_cw(&phy);
                slot.mac.state = MacState::Idle;
                self.fel.schedule(now, Event::MacKick(node));
            }
            RetryVerdict::GiveUp => {
                let (packet, dst, notify) = {
                    let slot = &mut self.nodes[node.index()];
                    slot.mac.reset_cw(&phy);
                    slot.mac.state = MacState::Idle;
                    let Some(frame) = slot.mac.queue.pop_front() else {
                        self.fel.schedule(now, Event::MacKick(node));
                        return;
                    };
                    (frame.packet, frame.dst, frame.notify_failure)
                };
                self.fel.schedule(now, Event::MacKick(node));
                // AwaitAck only ever arises for unicast frames, so `dst`
                // is present; a broadcast head here would be a kernel bug
                // and is simply not reported rather than panicking.
                let Some(next_hop) = dst else { return };
                self.emit(TraceEvent::MacGiveUp { node, dst: next_hop, uid: packet.uid });
                if notify {
                    self.call_protocol(node, |p, ctx| {
                        p.handle_unicast_failure(ctx, next_hop, packet)
                    });
                }
            }
        }
    }

    fn on_rx_end(&mut self, node: NodeId, tx_id: u64) {
        let phy = self.cfg.phy.clone();
        let now = self.now;
        let rx = {
            let slot = &mut self.nodes[node.index()];
            let Some(pos) = slot.rx.iter().position(|r| r.tx_id == tx_id) else {
                return;
            };
            slot.rx.swap_remove(pos)
        };
        if rx.corrupted {
            self.metrics.collisions += 1;
            self.emit(TraceEvent::RxCollision { node });
            self.fel.schedule(now, Event::MacKick(node));
            return;
        }
        match rx.frame.payload {
            FramePayload::Ack { acked_tx } => {
                if rx.frame.dst == Some(node) {
                    let slot = &mut self.nodes[node.index()];
                    if let MacState::AwaitAck { tx_id: t, .. } = slot.mac.state {
                        if t == acked_tx {
                            slot.mac.queue.pop_front();
                            slot.mac.reset_cw(&phy);
                            slot.mac.state = MacState::Idle;
                        }
                    }
                }
            }
            FramePayload::Packet(ref packet) => {
                let for_me = rx.frame.dst == Some(node);
                let broadcast = rx.frame.dst.is_none();
                if for_me || broadcast {
                    self.emit(TraceEvent::RxOk { node, uid: Some(packet.uid) });
                }
                if for_me {
                    self.send_ack(node, rx.frame.src, tx_id);
                }
                if for_me || broadcast {
                    let fresh = self.nodes[node.index()].recent.insert(packet.uid);
                    if fresh {
                        let prev_hop = rx.frame.src;
                        let pkt = packet.clone();
                        match pkt.body {
                            PacketBody::Data(data) => {
                                self.call_protocol(node, |p, ctx| {
                                    p.handle_data_packet(ctx, prev_hop, data)
                                });
                            }
                            PacketBody::Control(ctrl) => {
                                self.call_protocol(node, |p, ctx| {
                                    p.handle_control(ctx, prev_hop, ctrl, broadcast)
                                });
                            }
                        }
                    }
                }
                // Overheard unicast for someone else: ignored (no
                // promiscuous mode).
            }
        }
        self.fel.schedule(now, Event::MacKick(node));
    }

    /// Transmits a link-layer ACK SIFS after a successful reception.
    /// ACKs ignore carrier sense (as in 802.11) but are skipped if this
    /// radio is already busy sending.
    fn send_ack(&mut self, node: NodeId, to: NodeId, acked_tx: u64) {
        let phy = self.cfg.phy.clone();
        let now = self.now;
        if !self.nodes[node.index()].mac.radio_free(now) {
            return;
        }
        let dur = phy.sifs + phy.ack_duration();
        self.nodes[node.index()].mac.ack_busy_until = now + dur;
        let tx_id = self.next_tx_id;
        self.next_tx_id += 1;
        let frame = Frame { src: node, dst: Some(to), payload: FramePayload::Ack { acked_tx } };
        self.propagate(node, frame, tx_id, dur);
        // Free the radio (and retry pending frames) when the ACK ends.
        self.fel.schedule(now + dur, Event::MacKick(node));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PhyConfig, SimConfig};
    use crate::mobility::StaticMobility;
    use crate::protocol::DropReason;
    use crate::static_routing::StaticRouting;

    fn small_world(n: usize, spacing: f64, seed: u64) -> World {
        let mobility = StaticMobility::line(n, spacing);
        let cfg = SimConfig {
            phy: PhyConfig::default(),
            duration: SimDuration::from_secs(30),
            seed,
            audit_interval: None,
            audit_every_event: false,
            invariant_audit: false,
            fault_plan: None,
        };
        let topo = StaticRouting::tables_for_line(n);
        World::new(cfg, Box::new(mobility), move |id, _| {
            Box::new(StaticRouting::new(id, topo.clone()))
        })
    }

    #[test]
    fn single_hop_delivery() {
        let mut w = small_world(2, 100.0, 1);
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(1), 512);
        let m = w.run();
        assert_eq!(m.data_originated, 1);
        assert_eq!(m.data_delivered, 1);
        assert!(m.mean_latency_s() > 0.0 && m.mean_latency_s() < 0.1);
    }

    #[test]
    fn multi_hop_chain_delivery() {
        let mut w = small_world(5, 200.0, 2);
        for i in 0..20 {
            w.schedule_app_packet(SimTime::from_millis(1000 + i * 100), NodeId(0), NodeId(4), 512);
        }
        let m = w.run();
        assert_eq!(m.data_originated, 20);
        assert_eq!(m.data_delivered, 20, "chain should deliver everything");
        assert!(m.data_tx_hops >= 80, "4 hops x 20 packets");
    }

    #[test]
    fn out_of_range_nodes_cannot_communicate() {
        // 400 m spacing > 275 m range: no neighbours, MAC gives up.
        let mut w = small_world(2, 400.0, 3);
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(1), 512);
        let m = w.run();
        assert_eq!(m.data_delivered, 0);
        assert_eq!(m.mac_retry_failures, 1);
    }

    #[test]
    fn neighbors_respect_range() {
        let w = small_world(4, 200.0, 4);
        // 200 m spacing, 275 m range: only adjacent nodes are neighbours.
        // `neighbors` is a read-only query: `w` needs no `mut`.
        assert_eq!(w.neighbors(NodeId(0)), vec![NodeId(1)]);
        assert_eq!(w.neighbors(NodeId(1)), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed: u64| {
            let mut w = small_world(5, 200.0, seed);
            for i in 0..50 {
                w.schedule_app_packet(
                    SimTime::from_millis(500 + i * 37),
                    NodeId(0),
                    NodeId(4),
                    512,
                );
            }
            let m = w.run();
            (m.data_delivered, m.data_tx_hops, m.collisions)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn cbr_traffic_generates_and_delivers() {
        let mobility = StaticMobility::line(3, 150.0);
        let cfg =
            SimConfig { duration: SimDuration::from_secs(60), seed: 5, ..SimConfig::default() };
        let topo = StaticRouting::tables_for_line(3);
        let mut w = World::new(cfg, Box::new(mobility), move |id, _| {
            Box::new(StaticRouting::new(id, topo.clone()))
        });
        w.with_cbr(TrafficConfig::paper(2));
        let m = w.run();
        assert!(m.data_originated > 100, "expected CBR load, got {}", m.data_originated);
        assert!(
            m.delivery_ratio() > 0.95,
            "static 3-node chain should deliver nearly everything: {}",
            m.delivery_ratio()
        );
        assert!(m.sim_seconds == 60.0);
    }

    #[test]
    fn contention_produces_some_collisions() {
        // Many nodes in range of each other, heavy broadcast-free data
        // load: the DCF should still mostly cope, but hidden terminals
        // don't exist here so collisions stay modest. Use a longer chain
        // with cross traffic to induce hidden-terminal collisions.
        // Saturating bidirectional load over a 5-hop chain: hidden
        // terminals must produce collisions.
        let mut w = small_world(6, 250.0, 9);
        for i in 0..200u64 {
            w.schedule_app_packet(SimTime::from_millis(500 + i * 11), NodeId(0), NodeId(5), 512);
            w.schedule_app_packet(SimTime::from_millis(505 + i * 11), NodeId(5), NodeId(0), 512);
        }
        let m = w.run();
        assert!(m.collisions > 0, "hidden terminals should collide sometimes");
        assert!(m.data_delivered > 0, "some packets must still get through");
    }

    #[test]
    fn moderate_load_mostly_recovered_by_retries() {
        let mut w = small_world(6, 250.0, 9);
        for i in 0..200u64 {
            w.schedule_app_packet(SimTime::from_millis(500 + i * 60), NodeId(0), NodeId(5), 512);
            w.schedule_app_packet(SimTime::from_millis(530 + i * 60), NodeId(5), NodeId(0), 512);
        }
        let m = w.run();
        assert!(
            m.delivery_ratio() > 0.5,
            "MAC retries should recover most frames at moderate load: {}",
            m.delivery_ratio()
        );
    }

    #[test]
    fn ttl_expiry_counted_as_drop() {
        // StaticRouting drops when TTL runs out; build a tiny TTL packet
        // by scheduling across a chain longer than the TTL. DEFAULT TTL
        // is 64 so instead verify NoRoute drops for unreachable dest.
        let mut w = small_world(2, 100.0, 11);
        // destination 5 does not exist in the static tables (n=2): the
        // protocol reports NoRoute.
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(1), 512);
        w.schedule_app_packet(SimTime::from_secs(2), NodeId(1), NodeId(0), 512);
        let m = w.run();
        assert_eq!(m.data_delivered, 2);
        assert_eq!(m.drops.get(&DropReason::NoRoute), None);
    }

    #[test]
    fn trace_records_packet_lifecycle() {
        use crate::trace::{MemoryTrace, TraceEvent};
        let shared = MemoryTrace::shared();
        let mut w = small_world(3, 200.0, 15);
        w.set_trace(Box::new(shared.clone()));
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(2), 512);
        let m = w.run();
        assert_eq!(m.data_delivered, 1);
        let tr = shared.lock().unwrap();
        let tx = tr.count(|e| matches!(e, TraceEvent::TxStart { uid: Some(_), .. }));
        let rx = tr.count(|e| matches!(e, TraceEvent::RxOk { .. }));
        let delivered = tr.count(|e| matches!(e, TraceEvent::Delivered { .. }));
        assert!(tx >= 2, "two data hops: {tx}");
        assert!(rx >= 2, "each hop received: {rx}");
        assert_eq!(delivered, 1);
        // Events are time-ordered.
        assert!(tr.events().windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn capture_lets_the_closer_frame_survive_hidden_terminal_overlap() {
        use crate::geometry::Position;
        use crate::mobility::StaticMobility;
        // R(0,0) hears A(-50,0) and B(250,0); A and B are 300 m apart
        // and cannot carrier-sense each other (hidden terminals). A's
        // frame starts first and its transmitter is >3.16x closer, so
        // with capture enabled R still decodes it.
        let run = |capture: Option<f64>| {
            let positions = vec![
                Position::new(0.0, 0.0),   // R
                Position::new(-50.0, 0.0), // A
                Position::new(250.0, 0.0), // B
            ];
            let adj = vec![vec![1, 2], vec![0], vec![0]];
            let topo = StaticRouting::from_adjacency(&adj);
            let cfg = SimConfig {
                phy: PhyConfig { capture_distance_ratio: capture, ..PhyConfig::default() },
                duration: SimDuration::from_secs(10),
                seed: 5,
                ..SimConfig::default()
            };
            let mut w = World::new(cfg, Box::new(StaticMobility::new(positions)), move |id, _| {
                Box::new(StaticRouting::new(id, topo.clone()))
            });
            // Repeat the overlapping pair many times so backoff
            // randomness cannot hide the effect.
            for k in 0..50u64 {
                let base = 100_000_000 + k * 100_000_000; // every 100 ms
                w.fel.schedule(SimTime::from_nanos(base), Event::AppSend { idx: 0 });
                // B starts 500 us into A's ~2.4 ms frame.
                w.fel.schedule(SimTime::from_nanos(base + 500_000), Event::AppSend { idx: 1 });
                // (re-use two manual packets scheduled below)
            }
            w.manual.push(AppPacket {
                src: NodeId(1),
                dst: NodeId(0),
                payload_len: 512,
                flow_id: MANUAL_FLOW_BASE,
                seq: 0,
            });
            w.manual.push(AppPacket {
                src: NodeId(2),
                dst: NodeId(0),
                payload_len: 512,
                flow_id: MANUAL_FLOW_BASE + 1,
                seq: 0,
            });
            w.run()
        };
        let without = run(None);
        let with = run(Some(3.16));
        assert!(
            with.collisions < without.collisions,
            "capture must reduce corrupted receptions: {} !< {}",
            with.collisions,
            without.collisions
        );
        assert!(without.collisions > 0, "hidden terminals must collide at all");
    }

    fn faulted_world(n: usize, plan: crate::faults::FaultPlan, seed: u64) -> World {
        let mobility = StaticMobility::line(n, 200.0);
        let cfg = SimConfig {
            duration: SimDuration::from_secs(10),
            seed,
            fault_plan: Some(plan),
            ..SimConfig::default()
        };
        let topo = StaticRouting::tables_for_line(n);
        World::new(cfg, Box::new(mobility), move |id, _| {
            Box::new(StaticRouting::new(id, topo.clone()))
        })
    }

    #[test]
    fn crash_silences_relay_until_restart() {
        use crate::faults::{FaultAction, FaultPlan};
        let plan = FaultPlan::new(vec![(
            SimTime::from_secs(2),
            FaultAction::CrashRestart { node: NodeId(1), downtime: SimDuration::from_secs(2) },
        )]);
        let mut w = faulted_world(3, plan, 21);
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(2), 512); // before crash
        w.schedule_app_packet(SimTime::from_millis(2500), NodeId(0), NodeId(2), 512); // relay down
        w.schedule_app_packet(SimTime::from_secs(6), NodeId(0), NodeId(2), 512); // after restart
        let m = w.run();
        assert_eq!(m.data_delivered, 2, "only the mid-crash packet is lost");
        assert_eq!(m.faults_injected, 1);
        assert_eq!(m.node_restarts, 1);
        assert_eq!(m.mac_retry_failures, 1, "sender gives up on the dead relay");
    }

    #[test]
    fn admin_link_cut_blocks_until_restored() {
        use crate::faults::{FaultAction, FaultPlan};
        let plan = FaultPlan::new(vec![
            (SimTime::from_millis(1500), FaultAction::LinkDown { a: NodeId(0), b: NodeId(1) }),
            (SimTime::from_millis(3500), FaultAction::LinkUp { a: NodeId(1), b: NodeId(0) }),
        ]);
        let mut w = faulted_world(2, plan, 22);
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(1), 512);
        w.schedule_app_packet(SimTime::from_secs(2), NodeId(0), NodeId(1), 512);
        w.schedule_app_packet(SimTime::from_secs(4), NodeId(0), NodeId(1), 512);
        let m = w.run();
        assert_eq!(m.data_delivered, 2, "the cut swallows exactly the middle packet");
        assert_eq!(m.faults_injected, 2);
        assert_eq!(m.node_restarts, 0);
    }

    #[test]
    fn partition_and_heal_gate_cross_traffic() {
        use crate::faults::{FaultAction, FaultPlan};
        let plan = FaultPlan::new(vec![
            (SimTime::from_millis(1500), FaultAction::Partition { group: vec![NodeId(0)] }),
            (SimTime::from_millis(3500), FaultAction::Heal),
        ]);
        let mut w = faulted_world(2, plan, 23);
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(1), 512);
        w.schedule_app_packet(SimTime::from_secs(2), NodeId(0), NodeId(1), 512);
        w.schedule_app_packet(SimTime::from_secs(4), NodeId(0), NodeId(1), 512);
        let m = w.run();
        assert_eq!(m.data_delivered, 2);
    }

    #[test]
    fn total_loss_impairment_blocks_a_link() {
        use crate::faults::{FaultAction, FaultPlan};
        let plan = FaultPlan::new(vec![(
            SimTime::from_millis(500),
            FaultAction::LinkImpair {
                a: NodeId(0),
                b: NodeId(1),
                loss_ppm: 1_000_000,
                corrupt_ppm: 0,
            },
        )]);
        let mut w = faulted_world(2, plan, 24);
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(1), 512);
        let m = w.run();
        assert_eq!(m.data_delivered, 0);
        assert_eq!(m.mac_retry_failures, 1);
    }

    #[test]
    fn faulted_runs_replay_identically() {
        use crate::faults::{FaultIntensity, FaultPlan};
        let run = || {
            let plan = FaultPlan::random(
                &mut SimRng::stream(77, "plan"),
                &FaultIntensity::level(5, SimDuration::from_secs(10), 2),
            );
            let mut w = faulted_world(5, plan, 25);
            for i in 0..30u64 {
                w.schedule_app_packet(
                    SimTime::from_millis(500 + i * 123),
                    NodeId(0),
                    NodeId(4),
                    512,
                );
            }
            let m = w.run();
            (
                m.data_delivered,
                m.data_tx_hops,
                m.collisions,
                m.mac_retry_failures,
                m.faults_injected,
                m.node_restarts,
                m.latency_sum_s.to_bits(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn audit_finds_no_loops_in_static_routing() {
        let mobility = StaticMobility::line(4, 150.0);
        let cfg = SimConfig {
            duration: SimDuration::from_secs(10),
            seed: 13,
            audit_interval: Some(SimDuration::from_secs(1)),
            ..SimConfig::default()
        };
        let topo = StaticRouting::tables_for_line(4);
        let mut w = World::new(cfg, Box::new(mobility), move |id, _| {
            Box::new(StaticRouting::new(id, topo.clone()))
        });
        w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(3), 512);
        let m = w.run();
        assert_eq!(m.loop_violations, 0);
    }
}
