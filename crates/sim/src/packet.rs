//! Packets exchanged between nodes.
//!
//! The simulator is protocol-agnostic: routing-protocol control messages
//! travel as opaque byte strings ([`ControlPacket::bytes`]) tagged with a
//! [`ControlKind`] so the metrics layer can attribute overhead without
//! parsing protocol internals. Data packets carry the fields every
//! studied protocol needs (addressing, TTL, origination time) plus an
//! opaque extension area used by source-routing protocols.

use crate::time::SimTime;
use std::fmt;

/// Identifier of a node (dense indices `0..n`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The index as a `usize`, for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// Default time-to-live for data packets (hops).
pub const DEFAULT_DATA_TTL: u8 = 64;

/// Bytes of network-layer header added to every packet (an IPv4 header).
pub const IP_HEADER_BYTES: usize = 20;

/// Category of a routing-protocol control message, used for overhead
/// accounting (the paper's "network load" counts RREQ, RREP, RERR,
/// Hello, TC, etc. transmissions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ControlKind {
    /// Route request (AODV, LDR, DSR).
    Rreq,
    /// Route reply (AODV, LDR, DSR).
    Rrep,
    /// Route error (AODV, LDR, DSR).
    Rerr,
    /// Neighbour-sensing hello (OLSR).
    Hello,
    /// Topology-control broadcast (OLSR).
    Tc,
    /// Anything else.
    Other,
}

impl ControlKind {
    /// All kinds, in display order.
    pub const ALL: [ControlKind; 6] = [
        ControlKind::Rreq,
        ControlKind::Rrep,
        ControlKind::Rerr,
        ControlKind::Hello,
        ControlKind::Tc,
        ControlKind::Other,
    ];
}

/// An application data packet (the CBR payload of the evaluation).
#[derive(Clone, Debug, PartialEq)]
pub struct DataPacket {
    /// Originating node.
    pub src: NodeId,
    /// Final destination.
    pub dst: NodeId,
    /// Flow this packet belongs to (for metrics).
    pub flow: u32,
    /// Sequence number within the flow.
    pub seq: u32,
    /// Time the application originated the packet.
    pub created: SimTime,
    /// Application payload length in bytes (512 in the paper).
    pub payload_len: u16,
    /// Remaining hop budget; forwarders decrement and drop at zero.
    pub ttl: u8,
    /// Protocol extension header (e.g. a DSR source route), opaque to
    /// the simulator but counted in the transmitted size.
    pub ext: Vec<u8>,
}

impl DataPacket {
    /// Total on-air network-layer size in bytes.
    pub fn wire_size(&self) -> usize {
        IP_HEADER_BYTES + self.payload_len as usize + self.ext.len()
    }
}

/// A routing-protocol control message.
#[derive(Clone, Debug, PartialEq)]
pub struct ControlPacket {
    /// Message category for overhead accounting.
    pub kind: ControlKind,
    /// Encoded message body (protocol-defined wire format).
    pub bytes: Vec<u8>,
}

impl ControlPacket {
    /// Total on-air network-layer size in bytes.
    pub fn wire_size(&self) -> usize {
        IP_HEADER_BYTES + self.bytes.len()
    }
}

/// Network-layer packet body.
#[derive(Clone, Debug, PartialEq)]
pub enum PacketBody {
    /// Application data.
    Data(DataPacket),
    /// Routing-protocol control.
    Control(ControlPacket),
}

/// A network-layer packet in flight.
#[derive(Clone, Debug, PartialEq)]
pub struct Packet {
    /// Globally unique packet id (assigned by the simulator at send time).
    pub uid: u64,
    /// The node that created this packet (not the current transmitter);
    /// used to distinguish "initiated" from hop-wise "transmitted" counts.
    pub origin: NodeId,
    /// Payload.
    pub body: PacketBody,
}

impl Packet {
    /// Total on-air network-layer size in bytes.
    pub fn wire_size(&self) -> usize {
        match &self.body {
            PacketBody::Data(d) => d.wire_size(),
            PacketBody::Control(c) => c.wire_size(),
        }
    }

    /// The control kind, if this is a control packet.
    pub fn control_kind(&self) -> Option<ControlKind> {
        match &self.body {
            PacketBody::Control(c) => Some(c.kind),
            PacketBody::Data(_) => None,
        }
    }

    /// Borrow the data payload, if this is a data packet.
    pub fn as_data(&self) -> Option<&DataPacket> {
        match &self.body {
            PacketBody::Data(d) => Some(d),
            PacketBody::Control(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> DataPacket {
        DataPacket {
            src: NodeId(1),
            dst: NodeId(2),
            flow: 0,
            seq: 9,
            created: SimTime::ZERO,
            payload_len: 512,
            ttl: DEFAULT_DATA_TTL,
            ext: vec![],
        }
    }

    #[test]
    fn data_wire_size_includes_ip_header_and_ext() {
        let mut d = data();
        assert_eq!(d.wire_size(), 532);
        d.ext = vec![0u8; 12];
        assert_eq!(d.wire_size(), 544);
    }

    #[test]
    fn control_wire_size() {
        let c = ControlPacket { kind: ControlKind::Rreq, bytes: vec![0u8; 24] };
        assert_eq!(c.wire_size(), 44);
    }

    #[test]
    fn packet_accessors() {
        let p = Packet { uid: 1, origin: NodeId(1), body: PacketBody::Data(data()) };
        assert!(p.as_data().is_some());
        assert_eq!(p.control_kind(), None);
        assert_eq!(p.wire_size(), 532);

        let q = Packet {
            uid: 2,
            origin: NodeId(3),
            body: PacketBody::Control(ControlPacket { kind: ControlKind::Tc, bytes: vec![1, 2] }),
        };
        assert_eq!(q.control_kind(), Some(ControlKind::Tc));
        assert!(q.as_data().is_none());
        assert_eq!(q.wire_size(), 22);
    }

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(format!("{}", NodeId(7)), "n7");
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(NodeId::from(3u16), NodeId(3));
    }
}
