//! The interface between the simulator and a routing protocol.
//!
//! A protocol implementation is a per-node state machine driven by five
//! callbacks (packet origination, data reception, control reception,
//! timers, link failures). Each callback receives a [`Ctx`] through which
//! the protocol issues side effects — transmissions, deliveries, timers —
//! that the simulator applies after the callback returns. This keeps
//! protocol code single-threaded, deterministic and easy to unit-test:
//! feed a callback, inspect the queued [`Action`]s.

use crate::packet::{ControlKind, ControlPacket, DataPacket, NodeId, Packet};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceEvent;

/// Why a data packet was dropped at the routing layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// No route and discovery failed (or proactive table has no entry).
    NoRoute,
    /// The hop budget was exhausted.
    TtlExpired,
    /// The protocol's buffer for packets awaiting discovery overflowed.
    BufferOverflow,
    /// A source route was broken and the packet could not be salvaged.
    BrokenSourceRoute,
    /// A control frame failed wire decoding (truncated or corrupted by
    /// the fault layer) and was discarded instead of processed.
    Malformed,
    /// Any other protocol-specific reason.
    Other,
}

impl DropReason {
    /// Every reason, in a fixed order — telemetry iterates this instead
    /// of the metrics hash maps so exported field order is stable.
    pub const ALL: [DropReason; 6] = [
        DropReason::NoRoute,
        DropReason::TtlExpired,
        DropReason::BufferOverflow,
        DropReason::BrokenSourceRoute,
        DropReason::Malformed,
        DropReason::Other,
    ];
}

/// Protocol-level statistics the simulator cannot infer from packets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtoCounter {
    /// Route discoveries begun.
    DiscoveryStarted,
    /// Route discoveries that obtained a route.
    DiscoverySucceeded,
    /// Route discoveries abandoned after all retries.
    DiscoveryFailed,
    /// RREPs received that were usable (hop-wise) at the receiving node —
    /// the paper's "RREP Recv" metric counts these per RREQ initiated.
    RrepUsableRecv,
    /// LDR path resets (destination sequence-number increments forced by
    /// the T bit); AODV-style own-sequence-number increments also count.
    SeqnoIncrement,
    /// Packets salvaged onto an alternate route (DSR).
    Salvage,
}

/// A side effect requested by a protocol callback.
#[derive(Clone, Debug)]
pub enum Action {
    /// Link-level broadcast of a control message to all neighbours.
    Broadcast {
        /// The message.
        ctrl: ControlPacket,
        /// `true` when this node originated the message (vs. relaying),
        /// for the paper's "initiated" counters.
        initiated: bool,
    },
    /// Unicast a control message to a neighbour.
    UnicastControl {
        /// Next-hop neighbour.
        next: NodeId,
        /// The message.
        ctrl: ControlPacket,
        /// Origination flag, as for [`Action::Broadcast`].
        initiated: bool,
        /// Deliver [`RoutingProtocol::handle_unicast_failure`] if the MAC
        /// exhausts its retries.
        notify_failure: bool,
    },
    /// Forward (or originate) a data packet to a next-hop neighbour.
    /// MAC failure always notifies the protocol.
    SendData {
        /// Next-hop neighbour.
        next: NodeId,
        /// The packet.
        data: DataPacket,
    },
    /// Deliver a data packet to the local application (this node is the
    /// destination). The simulator records delivery and latency.
    Deliver {
        /// The packet.
        data: DataPacket,
    },
    /// Discard a data packet. The simulator records the loss.
    DropData {
        /// The packet.
        data: DataPacket,
        /// Why.
        reason: DropReason,
    },
    /// Discard a control frame whose bytes failed wire decoding. The
    /// simulator records a [`DropReason::Malformed`] drop and a
    /// [`TraceEvent::ControlDrop`] so corruption-fault workloads show up
    /// in metrics instead of vanishing silently.
    DropMalformed {
        /// Claimed kind of the undecodable frame.
        kind: ControlKind,
    },
    /// Request a timer callback `token` after `delay`.
    ///
    /// Timers always fire; protocols must ignore stale tokens (the usual
    /// discrete-event pattern — "cancellation" is a protocol-side check).
    SetTimer {
        /// Delay from now.
        delay: SimDuration,
        /// Opaque value handed back to [`RoutingProtocol::handle_timer`].
        token: u64,
    },
    /// Bump a protocol-level statistic.
    Count {
        /// Which statistic.
        which: ProtoCounter,
        /// Increment.
        amount: u64,
    },
    /// Emit a routing-decision trace event (see [`crate::trace`]).
    /// Queued only when tracing is enabled on the [`Ctx`].
    Trace(TraceEvent),
}

/// Callback context: read-only facts about the node plus an action queue.
#[derive(Debug)]
pub struct Ctx<'a> {
    now: SimTime,
    id: NodeId,
    n_nodes: usize,
    rng: &'a mut SimRng,
    actions: &'a mut Vec<Action>,
    trace_enabled: bool,
}

impl<'a> Ctx<'a> {
    /// Creates a context (used by the simulator and by protocol unit
    /// tests that drive callbacks directly). Tracing starts disabled;
    /// the simulator enables it via [`Ctx::set_trace_enabled`] when a
    /// sink or auditor is attached.
    pub fn new(
        now: SimTime,
        id: NodeId,
        n_nodes: usize,
        rng: &'a mut SimRng,
        actions: &'a mut Vec<Action>,
    ) -> Self {
        Ctx { now, id, n_nodes, rng, actions, trace_enabled: false }
    }

    /// Turns routing-decision tracing on or off for this callback.
    pub fn set_trace_enabled(&mut self, on: bool) {
        self.trace_enabled = on;
    }

    /// Whether [`Ctx::trace`] will record anything.
    pub fn trace_enabled(&self) -> bool {
        self.trace_enabled
    }

    /// Emits a routing-decision trace event. The closure is evaluated
    /// only when tracing is enabled, so event construction (snapshots,
    /// allocation) costs nothing in untraced runs.
    pub fn trace<F: FnOnce() -> TraceEvent>(&mut self, f: F) {
        if self.trace_enabled {
            let event = f();
            self.actions.push(Action::Trace(event));
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of nodes in the network (for network-diameter TTLs).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The node's deterministic random stream (jitter, backoff choices).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Queues an arbitrary action.
    pub fn push(&mut self, action: Action) {
        self.actions.push(action);
    }

    /// Broadcasts a control message to link neighbours.
    pub fn broadcast(&mut self, kind: ControlKind, bytes: Vec<u8>, initiated: bool) {
        self.push(Action::Broadcast { ctrl: ControlPacket { kind, bytes }, initiated });
    }

    /// Unicasts a control message to a neighbour.
    pub fn unicast_control(
        &mut self,
        next: NodeId,
        kind: ControlKind,
        bytes: Vec<u8>,
        initiated: bool,
        notify_failure: bool,
    ) {
        self.push(Action::UnicastControl {
            next,
            ctrl: ControlPacket { kind, bytes },
            initiated,
            notify_failure,
        });
    }

    /// Sends a data packet to a next hop.
    pub fn send_data(&mut self, next: NodeId, data: DataPacket) {
        self.push(Action::SendData { next, data });
    }

    /// Delivers a data packet locally.
    pub fn deliver(&mut self, data: DataPacket) {
        self.push(Action::Deliver { data });
    }

    /// Drops a data packet.
    pub fn drop_data(&mut self, data: DataPacket, reason: DropReason) {
        self.push(Action::DropData { data, reason });
    }

    /// Discards an undecodable control frame, recording the loss.
    pub fn drop_malformed(&mut self, kind: ControlKind) {
        self.push(Action::DropMalformed { kind });
    }

    /// Schedules a timer.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.push(Action::SetTimer { delay, token });
    }

    /// Bumps a protocol counter by one.
    pub fn count(&mut self, which: ProtoCounter) {
        self.push(Action::Count { which, amount: 1 });
    }
}

/// One row of a routing table, for inspection and display.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteDump {
    /// Destination.
    pub dest: NodeId,
    /// Next hop towards the destination.
    pub next: NodeId,
    /// Distance metric (hop count).
    pub dist: u32,
    /// Feasible distance, for protocols that keep one (LDR).
    pub feasible_dist: Option<u32>,
    /// Destination sequence number, for protocols that keep one.
    pub seqno: Option<u64>,
    /// Whether the route is currently usable.
    pub valid: bool,
}

/// Aggregate route-table occupancy, sampled by the telemetry layer
/// ([`crate::telemetry`]) at every `TelemetrySample` kernel event.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouteTelemetry {
    /// Route-table entries held (valid or not); for DSR, cached paths.
    pub entries: u64,
    /// Entries currently usable for forwarding.
    pub valid: u64,
}

/// A per-node routing protocol instance.
///
/// Implementations must be deterministic given the callback sequence and
/// the `Ctx` RNG stream.
pub trait RoutingProtocol: Send {
    /// Short protocol name ("LDR", "AODV", ...).
    fn name(&self) -> &'static str;

    /// Called once at simulation start (schedule periodic timers here).
    fn start(&mut self, _ctx: &mut Ctx) {}

    /// The local application wants `data` carried to `data.dst`.
    fn handle_data_origination(&mut self, ctx: &mut Ctx, data: DataPacket);

    /// A data packet arrived from link neighbour `prev_hop`. The protocol
    /// must deliver it, forward it, or drop it.
    fn handle_data_packet(&mut self, ctx: &mut Ctx, prev_hop: NodeId, data: DataPacket);

    /// A control message arrived from link neighbour `prev_hop`.
    /// `was_broadcast` distinguishes flooded from unicast receptions.
    fn handle_control(
        &mut self,
        ctx: &mut Ctx,
        prev_hop: NodeId,
        ctrl: ControlPacket,
        was_broadcast: bool,
    );

    /// A timer set via [`Ctx::set_timer`] fired.
    fn handle_timer(&mut self, ctx: &mut Ctx, token: u64);

    /// The MAC exhausted retries sending `packet` to `next_hop`.
    fn handle_unicast_failure(&mut self, ctx: &mut Ctx, next_hop: NodeId, packet: Packet);

    /// The node crashed and restarted: volatile state (routes, caches,
    /// pending discoveries) is gone; only what survives a power cycle —
    /// e.g. a real-time clock — may be retained. The default forgets
    /// nothing, which is only right for stateless protocols.
    fn handle_reboot(&mut self, _ctx: &mut Ctx) {}

    /// Snapshot of (destination, next hop) pairs for every currently
    /// *usable* route — consumed by the loop auditor.
    fn route_successors(&self) -> Vec<(NodeId, NodeId)> {
        Vec::new()
    }

    /// Human-inspectable routing-table snapshot (examples, debugging).
    fn route_table_dump(&self) -> Vec<RouteDump> {
        Vec::new()
    }

    /// The node's own destination sequence number, as a scalar, if the
    /// protocol has one (Fig. 7 metric).
    fn own_seqno_value(&self) -> Option<f64> {
        None
    }

    /// Route-table occupancy for the time-series sampler. Must be
    /// read-only and cheap; the default derives it from
    /// [`RoutingProtocol::route_table_dump`], which is correct but
    /// allocates — protocols override it with a direct count.
    fn telemetry_snapshot(&self) -> RouteTelemetry {
        let dump = self.route_table_dump();
        RouteTelemetry {
            entries: dump.len() as u64,
            valid: dump.iter().filter(|r| r.valid).count() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_queues_actions_in_order() {
        let mut rng = SimRng::from_seed(1);
        let mut actions = Vec::new();
        let mut ctx = Ctx::new(SimTime::from_secs(1), NodeId(3), 50, &mut rng, &mut actions);
        assert_eq!(ctx.id(), NodeId(3));
        assert_eq!(ctx.n_nodes(), 50);
        assert_eq!(ctx.now(), SimTime::from_secs(1));
        ctx.broadcast(ControlKind::Rreq, vec![1], true);
        ctx.set_timer(SimDuration::from_millis(40), 7);
        ctx.count(ProtoCounter::DiscoveryStarted);
        assert_eq!(actions.len(), 3);
        assert!(matches!(actions[0], Action::Broadcast { initiated: true, .. }));
        assert!(matches!(actions[1], Action::SetTimer { token: 7, .. }));
        assert!(matches!(
            actions[2],
            Action::Count { which: ProtoCounter::DiscoveryStarted, amount: 1 }
        ));
    }

    #[test]
    fn ctx_trace_is_gated() {
        let mut rng = SimRng::from_seed(3);
        let mut actions = Vec::new();
        let mut ctx = Ctx::new(SimTime::ZERO, NodeId(1), 4, &mut rng, &mut actions);
        let mut built = 0;
        ctx.trace(|| {
            built += 1;
            TraceEvent::SeqnoReset { node: NodeId(1), old: 1, new: 2 }
        });
        assert_eq!(built, 0, "disabled tracing must not even build the event");
        ctx.set_trace_enabled(true);
        ctx.trace(|| {
            built += 1;
            TraceEvent::SeqnoReset { node: NodeId(1), old: 1, new: 2 }
        });
        assert_eq!(built, 1);
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], Action::Trace(TraceEvent::SeqnoReset { old: 1, new: 2, .. })));
    }

    #[test]
    fn ctx_rng_is_usable() {
        let mut rng = SimRng::from_seed(2);
        let mut actions = Vec::new();
        let mut ctx = Ctx::new(SimTime::ZERO, NodeId(0), 1, &mut rng, &mut actions);
        let v = ctx.rng().below(10);
        assert!(v < 10);
    }
}
