//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a declarative, seeded schedule of adverse events —
//! node crashes with state loss, administrative link churn, regional
//! partitions, per-link loss/corruption impairment, and stale-advert
//! replay. The plan is installed through
//! [`SimConfig::fault_plan`](crate::config::SimConfig) and executed by
//! the event kernel itself: each entry becomes an
//! [`Event::Fault`](crate::event::Event) on the future event list, so
//! fault actions interleave with MAC, traffic and mobility events under
//! the kernel's usual total order. Combined with the named-stream RNG
//! discipline ([`SimRng::stream`]), every fault trial replays
//! byte-identically from `(plan, seed)`.
//!
//! # Determinism contract
//!
//! This module must never consult wall-clock time or OS entropy, and all
//! of its runtime collections are order-deterministic (`Vec`, `BTreeMap`,
//! `BTreeSet` — never `HashMap`/`HashSet`, whose iteration order is
//! seeded per-process). `cargo xtask check` enforces both rules for this
//! file.
//!
//! # Fault semantics
//!
//! * **Crash/restart** ([`FaultAction::CrashRestart`]): the node goes
//!   silent immediately — pending MAC state, in-progress receptions and
//!   queued frames are discarded, and every protocol timer that fires
//!   while the node is down is permanently lost. After `downtime` the
//!   node restarts *with total state loss*: the kernel emits a
//!   [`NodeRestarted`](crate::trace::TraceEvent::NodeRestarted) trace
//!   event and invokes the protocol's restart callback
//!   (`RoutingProtocol::handle_reboot`), which must rebuild from
//!   nothing. For LDR this exercises the paper's destination
//!   sequence-number recovery (epoch bump); for AODV it honestly
//!   reproduces the counter reset that "Sequence Numbers Do Not
//!   Guarantee Loop Freedom" exploits.
//! * **Link churn** ([`FaultAction::LinkDown`]/[`FaultAction::LinkUp`]):
//!   an administrative cut of a single bidirectional link, independent
//!   of radio range. Frames on a cut link are silently not received.
//! * **Partition/heal** ([`FaultAction::Partition`]/[`FaultAction::Heal`]):
//!   a regional cut — every link between the group and the rest of the
//!   network is severed until a `Heal` clears it (healing also clears
//!   single-link cuts).
//! * **Impairment** ([`FaultAction::LinkImpair`]): independent per-frame
//!   loss and corruption draws on one link, in parts-per-million, from
//!   the dedicated `"faults"` RNG stream.
//! * **Replay** ([`FaultAction::ReplayLastControl`]): re-emits the last
//!   control frame the node transmitted, modelling a delayed duplicate
//!   of a (possibly stale) advertisement arriving long after the state
//!   that justified it is gone. Loop-free protocols must reject such
//!   adverts via their feasibility condition (LDR's NDC).

use crate::packet::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// One adverse action, applied at a scheduled instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Crash `node` now; restart it with total state loss after
    /// `downtime`. Ignored if the node is already down.
    CrashRestart {
        /// The node to crash.
        node: NodeId,
        /// How long the node stays silent before restarting.
        downtime: SimDuration,
    },
    /// Administratively cut the bidirectional link `a <-> b`.
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Restore a previously cut link `a <-> b`.
    LinkUp {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Sever every link between `group` and the rest of the network.
    /// A later partition replaces the current one.
    Partition {
        /// Nodes on one side of the cut.
        group: Vec<NodeId>,
    },
    /// Clear the current partition and all administrative link cuts.
    Heal,
    /// Impose independent per-frame loss and corruption on `a <-> b`.
    /// Rates are in parts per million; a rate of zero clears that
    /// impairment component.
    LinkImpair {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Probability (ppm) that a frame on this link is lost outright.
        loss_ppm: u32,
        /// Probability (ppm) that a frame survives but arrives corrupted.
        corrupt_ppm: u32,
    },
    /// Re-emit the last control frame `node` transmitted (a delayed
    /// stale duplicate). No-op if the node is down or has not yet sent
    /// a control frame.
    ReplayLastControl {
        /// The node whose last advertisement is replayed.
        node: NodeId,
    },
}

/// A declarative, time-ordered schedule of fault actions.
///
/// The plan is part of [`SimConfig`](crate::config::SimConfig): two runs
/// with the same `(plan, seed)` produce byte-identical traces and
/// metrics.
///
/// ```
/// use manet_sim::faults::{FaultAction, FaultPlan};
/// use manet_sim::packet::NodeId;
/// use manet_sim::time::{SimDuration, SimTime};
/// let plan = FaultPlan::new(vec![(
///     SimTime::from_secs(5),
///     FaultAction::CrashRestart { node: NodeId(2), downtime: SimDuration::from_secs(1) },
/// )]);
/// assert_eq!(plan.len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    entries: Vec<(SimTime, FaultAction)>,
}

/// Knobs for [`FaultPlan::random`]: how many faults of each kind a
/// generated schedule contains, and how severe they are.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultIntensity {
    /// Number of nodes in the world the plan targets.
    pub n_nodes: u16,
    /// Faults are scheduled in `(0, horizon)`.
    pub horizon: SimDuration,
    /// Number of crash/restart cycles.
    pub crashes: u32,
    /// Maximum downtime per crash (actual downtime is uniform in
    /// `(0, max_downtime]`).
    pub max_downtime: SimDuration,
    /// Number of link down/up churn pairs.
    pub link_churn: u32,
    /// Number of partition/heal pairs.
    pub partitions: u32,
    /// Number of per-link impairment installations.
    pub impairments: u32,
    /// Maximum loss and corruption rate (ppm) per impairment.
    pub max_impair_ppm: u32,
    /// Number of stale-advert replay injections.
    pub replays: u32,
}

impl FaultIntensity {
    /// A graded intensity ladder for degradation tables: level 0 is
    /// fault-free, and each higher level adds more of every fault kind.
    pub fn level(n_nodes: u16, horizon: SimDuration, level: u32) -> Self {
        FaultIntensity {
            n_nodes,
            horizon,
            crashes: level,
            max_downtime: SimDuration::from_millis(500).saturating_mul(u64::from(level.max(1))),
            link_churn: 2 * level,
            partitions: level / 2,
            impairments: level,
            max_impair_ppm: (50_000 * level).min(400_000),
            replays: level,
        }
    }
}

impl FaultPlan {
    /// Builds a plan from `(time, action)` entries, sorting them by
    /// time (stably, so same-instant actions keep their given order).
    pub fn new(mut entries: Vec<(SimTime, FaultAction)>) -> Self {
        entries.sort_by_key(|(t, _)| *t);
        FaultPlan { entries }
    }

    /// The scheduled entries, in time order.
    pub fn entries(&self) -> &[(SimTime, FaultAction)] {
        &self.entries
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Generates a random plan of the given intensity, deterministically
    /// from `rng`. Down/up and partition/heal actions are generated in
    /// matched pairs so a finite schedule always lets the network heal.
    ///
    /// The generator draws nothing when the corresponding count is zero,
    /// and is pure in `(rng state, intensity)` — it is the seed boundary
    /// for property-based fault soaking.
    pub fn random(rng: &mut SimRng, p: &FaultIntensity) -> Self {
        let mut entries: Vec<(SimTime, FaultAction)> = Vec::new();
        let horizon = p.horizon.as_nanos().max(2);
        let n = u64::from(p.n_nodes.max(1));
        let at = |rng: &mut SimRng| SimTime::from_nanos(1 + rng.below(horizon - 1));

        for _ in 0..p.crashes {
            let node = NodeId(rng.below(n) as u16);
            let downtime = SimDuration::from_nanos(1 + rng.below(p.max_downtime.as_nanos().max(1)));
            entries.push((at(rng), FaultAction::CrashRestart { node, downtime }));
        }
        for _ in 0..p.link_churn {
            let (a, b) = distinct_pair(rng, p.n_nodes);
            let down = at(rng);
            let up_ns = down.as_nanos() + 1 + rng.below(horizon / 2);
            entries.push((down, FaultAction::LinkDown { a, b }));
            entries.push((SimTime::from_nanos(up_ns), FaultAction::LinkUp { a, b }));
        }
        for _ in 0..p.partitions {
            let group = random_group(rng, p.n_nodes);
            let cut = at(rng);
            let heal_ns = cut.as_nanos() + 1 + rng.below(horizon / 2);
            entries.push((cut, FaultAction::Partition { group }));
            entries.push((SimTime::from_nanos(heal_ns), FaultAction::Heal));
        }
        for _ in 0..p.impairments {
            let (a, b) = distinct_pair(rng, p.n_nodes);
            let cap = u64::from(p.max_impair_ppm.max(1));
            let loss_ppm = rng.below(cap + 1) as u32;
            let corrupt_ppm = rng.below(cap + 1) as u32;
            entries.push((at(rng), FaultAction::LinkImpair { a, b, loss_ppm, corrupt_ppm }));
        }
        for _ in 0..p.replays {
            let node = NodeId(rng.below(n) as u16);
            entries.push((at(rng), FaultAction::ReplayLastControl { node }));
        }
        FaultPlan::new(entries)
    }
}

/// Picks two distinct node ids (falls back to `(0, 0)` when the world
/// has fewer than two nodes — such an action is then inert).
fn distinct_pair(rng: &mut SimRng, n_nodes: u16) -> (NodeId, NodeId) {
    if n_nodes < 2 {
        return (NodeId(0), NodeId(0));
    }
    let a = rng.below(u64::from(n_nodes)) as u16;
    let mut b = rng.below(u64::from(n_nodes) - 1) as u16;
    if b >= a {
        b += 1;
    }
    (NodeId(a), NodeId(b))
}

/// Picks a non-empty proper subset of the nodes (the partition group).
fn random_group(rng: &mut SimRng, n_nodes: u16) -> Vec<NodeId> {
    if n_nodes < 2 {
        return vec![NodeId(0)];
    }
    let mut ids: Vec<NodeId> = (0..n_nodes).map(NodeId).collect();
    rng.shuffle(&mut ids);
    let size = 1 + rng.below(u64::from(n_nodes) - 1) as usize;
    ids.truncate(size);
    ids.sort_unstable_by_key(|n| n.0);
    ids
}

/// Normalises an undirected link key so `(a, b)` and `(b, a)` collide.
fn link_key(a: NodeId, b: NodeId) -> (u16, u16) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

/// Per-link impairment rates, in parts per million.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Impairment {
    loss_ppm: u32,
    corrupt_ppm: u32,
}

/// The kernel-side runtime state of an executing [`FaultPlan`]:
/// which nodes are down, which links are administratively severed or
/// impaired, and the dedicated RNG stream for impairment draws.
#[derive(Clone, Debug)]
pub struct FaultState {
    plan: FaultPlan,
    down: Vec<bool>,
    cut: BTreeSet<(u16, u16)>,
    partition: Vec<bool>,
    partitioned: bool,
    impair: BTreeMap<(u16, u16), Impairment>,
    rng: SimRng,
}

/// The verdict of the per-frame impairment draw for one receiver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxFate {
    /// The frame arrives intact (subject to normal collision rules).
    Deliver,
    /// The frame is lost outright; the receiver never sees energy.
    Lose,
    /// The frame arrives but fails its checksum.
    Corrupt,
}

impl FaultState {
    /// Builds the runtime state for `plan` over an `n_nodes`-node world.
    /// `rng` must be the dedicated `"faults"` stream of the trial seed.
    pub fn new(plan: FaultPlan, n_nodes: usize, rng: SimRng) -> Self {
        FaultState {
            plan,
            down: vec![false; n_nodes],
            cut: BTreeSet::new(),
            partition: vec![false; n_nodes],
            partitioned: false,
            impair: BTreeMap::new(),
            rng,
        }
    }

    /// The scheduled action at plan index `idx`, if any.
    pub fn action(&self, idx: usize) -> Option<&FaultAction> {
        self.plan.entries().get(idx).map(|(_, a)| a)
    }

    /// Whether `node` is currently crashed.
    pub fn node_down(&self, node: NodeId) -> bool {
        self.down.get(node.index()).copied().unwrap_or(false)
    }

    /// Marks `node` crashed. Returns `false` (and does nothing) if it
    /// was already down.
    pub fn set_down(&mut self, node: NodeId) -> bool {
        match self.down.get_mut(node.index()) {
            Some(d) if !*d => {
                *d = true;
                true
            }
            _ => false,
        }
    }

    /// Marks `node` back up (restart instant). Returns `false` if it
    /// was not down.
    pub fn set_up(&mut self, node: NodeId) -> bool {
        match self.down.get_mut(node.index()) {
            Some(d) if *d => {
                *d = false;
                true
            }
            _ => false,
        }
    }

    /// Administratively cuts the link `a <-> b`.
    pub fn sever_link(&mut self, a: NodeId, b: NodeId) {
        self.cut.insert(link_key(a, b));
    }

    /// Restores an administratively cut link.
    pub fn restore_link(&mut self, a: NodeId, b: NodeId) {
        self.cut.remove(&link_key(a, b));
    }

    /// Installs a partition separating `group` from everyone else.
    pub fn set_partition(&mut self, group: &[NodeId]) {
        for side in self.partition.iter_mut() {
            *side = false;
        }
        for n in group {
            if let Some(side) = self.partition.get_mut(n.index()) {
                *side = true;
            }
        }
        self.partitioned = true;
    }

    /// Clears the partition and every administrative link cut.
    pub fn heal(&mut self) {
        self.partitioned = false;
        self.cut.clear();
    }

    /// Installs (or, with zero rates, clears) impairment on `a <-> b`.
    pub fn set_impairment(&mut self, a: NodeId, b: NodeId, loss_ppm: u32, corrupt_ppm: u32) {
        let key = link_key(a, b);
        if loss_ppm == 0 && corrupt_ppm == 0 {
            self.impair.remove(&key);
        } else {
            self.impair.insert(key, Impairment { loss_ppm, corrupt_ppm });
        }
    }

    /// Whether any link currently carries a loss/corruption impairment.
    /// The parallel kernel ([`crate::parallel`]) uses this to route
    /// windows with live impairments through the sequential path, so
    /// the shared `"faults"` RNG stream is only ever drawn from in
    /// canonical event order.
    pub fn has_impairments(&self) -> bool {
        !self.impair.is_empty()
    }

    /// Whether the link `a <-> b` is severed by a cut or the partition.
    pub fn link_severed(&self, a: NodeId, b: NodeId) -> bool {
        if self.cut.contains(&link_key(a, b)) {
            return true;
        }
        if self.partitioned {
            let sa = self.partition.get(a.index()).copied().unwrap_or(false);
            let sb = self.partition.get(b.index()).copied().unwrap_or(false);
            if sa != sb {
                return true;
            }
        }
        false
    }

    /// Draws the impairment fate of one frame on `a <-> b`. Consumes
    /// RNG state only when the link actually carries an impairment, so
    /// fault-free links never perturb the stream.
    pub fn rx_draw(&mut self, a: NodeId, b: NodeId) -> RxFate {
        let Some(&imp) = self.impair.get(&link_key(a, b)) else {
            return RxFate::Deliver;
        };
        if imp.loss_ppm > 0 && self.rng.below(1_000_000) < u64::from(imp.loss_ppm) {
            return RxFate::Lose;
        }
        if imp.corrupt_ppm > 0 && self.rng.below(1_000_000) < u64::from(imp.corrupt_ppm) {
            return RxFate::Corrupt;
        }
        RxFate::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_entries_by_time() {
        let plan = FaultPlan::new(vec![
            (SimTime::from_secs(9), FaultAction::Heal),
            (SimTime::from_secs(1), FaultAction::LinkDown { a: NodeId(0), b: NodeId(1) }),
        ]);
        assert_eq!(plan.entries()[0].0, SimTime::from_secs(1));
        assert_eq!(plan.entries()[1].0, SimTime::from_secs(9));
        assert!(!plan.is_empty());
    }

    #[test]
    fn random_plan_is_deterministic_in_seed() {
        let p = FaultIntensity::level(10, SimDuration::from_secs(30), 3);
        let a = FaultPlan::random(&mut SimRng::stream(7, "plan"), &p);
        let b = FaultPlan::random(&mut SimRng::stream(7, "plan"), &p);
        assert_eq!(a, b);
        let c = FaultPlan::random(&mut SimRng::stream(8, "plan"), &p);
        assert_ne!(a, c);
    }

    #[test]
    fn random_plan_pairs_churn_and_partitions() {
        let p = FaultIntensity {
            n_nodes: 6,
            horizon: SimDuration::from_secs(20),
            crashes: 0,
            max_downtime: SimDuration::from_secs(1),
            link_churn: 4,
            partitions: 2,
            impairments: 0,
            max_impair_ppm: 0,
            replays: 0,
        };
        let plan = FaultPlan::random(&mut SimRng::from_seed(3), &p);
        let downs = plan
            .entries()
            .iter()
            .filter(|(_, a)| matches!(a, FaultAction::LinkDown { .. }))
            .count();
        let ups =
            plan.entries().iter().filter(|(_, a)| matches!(a, FaultAction::LinkUp { .. })).count();
        let heals = plan.entries().iter().filter(|(_, a)| matches!(a, FaultAction::Heal)).count();
        assert_eq!(downs, 4);
        assert_eq!(ups, 4);
        assert_eq!(heals, 2);
    }

    #[test]
    fn level_zero_is_fault_free() {
        let p = FaultIntensity::level(10, SimDuration::from_secs(30), 0);
        let plan = FaultPlan::random(&mut SimRng::from_seed(1), &p);
        assert!(plan.is_empty());
    }

    #[test]
    fn down_up_round_trip() {
        let mut fs = FaultState::new(FaultPlan::default(), 3, SimRng::from_seed(0));
        assert!(!fs.node_down(NodeId(1)));
        assert!(fs.set_down(NodeId(1)));
        assert!(!fs.set_down(NodeId(1)), "double crash is inert");
        assert!(fs.node_down(NodeId(1)));
        assert!(fs.set_up(NodeId(1)));
        assert!(!fs.set_up(NodeId(1)));
        assert!(!fs.node_down(NodeId(1)));
    }

    #[test]
    fn link_cut_is_undirected_and_heals() {
        let mut fs = FaultState::new(FaultPlan::default(), 4, SimRng::from_seed(0));
        fs.sever_link(NodeId(2), NodeId(0));
        assert!(fs.link_severed(NodeId(0), NodeId(2)));
        assert!(fs.link_severed(NodeId(2), NodeId(0)));
        fs.restore_link(NodeId(0), NodeId(2));
        assert!(!fs.link_severed(NodeId(0), NodeId(2)));
        fs.sever_link(NodeId(1), NodeId(3));
        fs.heal();
        assert!(!fs.link_severed(NodeId(1), NodeId(3)));
    }

    #[test]
    fn partition_severs_cross_links_only() {
        let mut fs = FaultState::new(FaultPlan::default(), 4, SimRng::from_seed(0));
        fs.set_partition(&[NodeId(0), NodeId(1)]);
        assert!(fs.link_severed(NodeId(0), NodeId(2)));
        assert!(fs.link_severed(NodeId(1), NodeId(3)));
        assert!(!fs.link_severed(NodeId(0), NodeId(1)));
        assert!(!fs.link_severed(NodeId(2), NodeId(3)));
        fs.heal();
        assert!(!fs.link_severed(NodeId(0), NodeId(2)));
    }

    #[test]
    fn impairment_draws_only_on_impaired_links() {
        let mut fs = FaultState::new(FaultPlan::default(), 3, SimRng::from_seed(5));
        let before = fs.rng.clone();
        assert_eq!(fs.rx_draw(NodeId(0), NodeId(1)), RxFate::Deliver);
        assert_eq!(fs.rng, before, "clean link consumed rng state");
        fs.set_impairment(NodeId(0), NodeId(1), 1_000_000, 0);
        assert_eq!(fs.rx_draw(NodeId(1), NodeId(0)), RxFate::Lose);
        fs.set_impairment(NodeId(0), NodeId(1), 0, 1_000_000);
        assert_eq!(fs.rx_draw(NodeId(0), NodeId(1)), RxFate::Corrupt);
        fs.set_impairment(NodeId(0), NodeId(1), 0, 0);
        assert_eq!(fs.rx_draw(NodeId(0), NodeId(1)), RxFate::Deliver);
    }
}
