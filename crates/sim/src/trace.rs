//! Packet-lifecycle tracing.
//!
//! An optional [`TraceSink`] attached to a [`crate::world::World`]
//! receives one event per interesting link-layer/routing occurrence:
//! transmissions, clean receptions, collision losses, MAC give-ups and
//! application deliveries. [`MemoryTrace`] collects them for assertions
//! and debugging; shared handles (`Arc<Mutex<MemoryTrace>>`) implement
//! the trait too, so callers can keep access while the world owns the
//! sink.

use crate::packet::NodeId;
use crate::time::SimTime;
use std::sync::{Arc, Mutex};

/// One traced occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node put a frame on the air (first attempt or retry).
    TxStart {
        /// Transmitter.
        node: NodeId,
        /// Packet uid (`None` for link-layer ACKs).
        uid: Option<u64>,
        /// Link destination; `None` is a broadcast.
        dst: Option<NodeId>,
    },
    /// A frame was received intact.
    RxOk {
        /// Receiver.
        node: NodeId,
        /// Packet uid (`None` for link-layer ACKs).
        uid: Option<u64>,
    },
    /// A reception was corrupted by a collision.
    RxCollision {
        /// Receiver.
        node: NodeId,
    },
    /// The MAC exhausted its retries for a unicast frame.
    MacGiveUp {
        /// Transmitter.
        node: NodeId,
        /// The unreachable next hop.
        dst: NodeId,
        /// Packet uid.
        uid: u64,
    },
    /// A data packet reached its destination application.
    Delivered {
        /// Destination node.
        node: NodeId,
        /// Flow id.
        flow: u32,
        /// Sequence within the flow.
        seq: u32,
    },
}

/// Receives trace events from the simulator.
pub trait TraceSink: Send {
    /// Records one event at simulated time `t`.
    fn record(&mut self, t: SimTime, event: TraceEvent);
}

/// An in-memory event log.
#[derive(Debug, Default)]
pub struct MemoryTrace {
    events: Vec<(SimTime, TraceEvent)>,
}

impl MemoryTrace {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shareable handle usable both as the world's sink and for
    /// later inspection.
    pub fn shared() -> Arc<Mutex<MemoryTrace>> {
        Arc::new(Mutex::new(MemoryTrace::new()))
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[(SimTime, TraceEvent)] {
        &self.events
    }

    /// Number of events matching a predicate.
    pub fn count<F: Fn(&TraceEvent) -> bool>(&self, f: F) -> usize {
        self.events.iter().filter(|(_, e)| f(e)).count()
    }
}

impl TraceSink for MemoryTrace {
    fn record(&mut self, t: SimTime, event: TraceEvent) {
        self.events.push((t, event));
    }
}

impl TraceSink for Arc<Mutex<MemoryTrace>> {
    fn record(&mut self, t: SimTime, event: TraceEvent) {
        self.lock().expect("trace poisoned").record(t, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_trace_records_in_order() {
        let mut tr = MemoryTrace::new();
        tr.record(SimTime::from_secs(1), TraceEvent::RxCollision { node: NodeId(1) });
        tr.record(
            SimTime::from_secs(2),
            TraceEvent::Delivered { node: NodeId(2), flow: 1, seq: 0 },
        );
        assert_eq!(tr.events().len(), 2);
        assert!(tr.events()[0].0 < tr.events()[1].0);
        assert_eq!(tr.count(|e| matches!(e, TraceEvent::Delivered { .. })), 1);
    }

    #[test]
    fn shared_handle_feeds_the_same_log() {
        let shared = MemoryTrace::shared();
        let mut sink: Box<dyn TraceSink> = Box::new(shared.clone());
        sink.record(SimTime::ZERO, TraceEvent::RxOk { node: NodeId(0), uid: Some(7) });
        assert_eq!(shared.lock().unwrap().events().len(), 1);
    }
}
