//! Packet-lifecycle and routing-decision tracing.
//!
//! An optional [`TraceSink`] attached to a [`crate::world::World`]
//! receives one event per interesting occurrence on two layers:
//!
//! * **link layer** — transmissions, clean receptions, collision
//!   losses, MAC give-ups, per-hop data forwarding and drops
//!   ([`TraceEvent::DataSend`], [`TraceEvent::DataDrop`] — emitted by
//!   the kernel itself, so they cover every protocol) and application
//!   deliveries;
//! * **routing layer** — route-table mutations ([`RouteInstall`],
//!   [`RouteInvalidate`], [`SeqnoReset`]), per-advertisement
//!   feasibility verdicts with the full `(sn, d, fd)` invariant triple
//!   before and after ([`AdvertConsidered`], [`SolicitVerdict`]) and
//!   the RREQ/RREP/RERR lifecycle ([`RreqStart`], [`RreqRelay`],
//!   [`RrepSend`], [`RerrSend`]). Protocols emit these through
//!   [`crate::protocol::Ctx::trace`]; emission is free when no sink or
//!   auditor is attached (the closure never runs).
//!
//! [`MemoryTrace`] collects events for assertions and debugging; shared
//! handles (`Arc<Mutex<MemoryTrace>>`) implement the trait too, so
//! callers can keep access while the world owns the sink.
//!
//! [`RouteInstall`]: TraceEvent::RouteInstall
//! [`RouteInvalidate`]: TraceEvent::RouteInvalidate
//! [`SeqnoReset`]: TraceEvent::SeqnoReset
//! [`AdvertConsidered`]: TraceEvent::AdvertConsidered
//! [`SolicitVerdict`]: TraceEvent::SolicitVerdict
//! [`RreqStart`]: TraceEvent::RreqStart
//! [`RreqRelay`]: TraceEvent::RreqRelay
//! [`RrepSend`]: TraceEvent::RrepSend
//! [`RerrSend`]: TraceEvent::RerrSend

use crate::packet::{ControlKind, NodeId};
use crate::protocol::DropReason;
use crate::time::SimTime;
use std::sync::{Arc, Mutex};

/// A routing entry's `(sn, d, fd)` invariant triple, with the sequence
/// number scalarised (protocols encode their richer sequence-number
/// types — e.g. LDR's `(epoch, counter)` pair — into an
/// order-preserving `u64`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvariantSnapshot {
    /// Destination sequence number, if one is known.
    pub sn: Option<u64>,
    /// Measured distance (hops; `u32::MAX` is infinity).
    pub d: u32,
    /// Feasible distance (minimum `d` attained under the current `sn`).
    pub fd: u32,
}

/// What a protocol's route table decided about one advertisement
/// (mirrors LDR's Procedure 3 outcomes; other protocols map their own
/// accept/reject decisions onto the same vocabulary).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteVerdict {
    /// Installed as a new route or successor change.
    Installed,
    /// Refreshed the current successor in place.
    Refreshed,
    /// Feasible (NDC holds) but not better than the current route.
    NotBetter,
    /// Rejected by the feasibility condition (NDC).
    Infeasible,
}

/// Why a route was invalidated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InvalidateCause {
    /// The MAC declared the next-hop link broken.
    LinkFailure,
    /// A received RERR named the destination via our successor.
    RouteError,
    /// The "request as error" optimisation: our successor towards the
    /// destination was itself heard soliciting it.
    RequestAsError,
    /// A higher sequence number was adopted, resetting `fd` history.
    SeqnoAdopted,
}

/// One traced occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node put a frame on the air (first attempt or retry).
    TxStart {
        /// Transmitter.
        node: NodeId,
        /// Packet uid (`None` for link-layer ACKs).
        uid: Option<u64>,
        /// Link destination; `None` is a broadcast.
        dst: Option<NodeId>,
    },
    /// A frame was received intact.
    RxOk {
        /// Receiver.
        node: NodeId,
        /// Packet uid (`None` for link-layer ACKs).
        uid: Option<u64>,
    },
    /// A reception was corrupted by a collision.
    RxCollision {
        /// Receiver.
        node: NodeId,
    },
    /// The MAC exhausted its retries for a unicast frame.
    MacGiveUp {
        /// Transmitter.
        node: NodeId,
        /// The unreachable next hop.
        dst: NodeId,
        /// Packet uid.
        uid: u64,
    },
    /// A data packet reached its destination application.
    Delivered {
        /// Destination node.
        node: NodeId,
        /// Flow id.
        flow: u32,
        /// Sequence within the flow.
        seq: u32,
    },
    /// A node handed a data packet to its MAC for one forwarding hop
    /// (origination or relay). Emitted by the kernel for every
    /// protocol, so per-packet lifecycles (`tracegrep
    /// --explain-packet`) cover DSR/OLSR too, which never touch
    /// `Ctx::trace` on the data path.
    DataSend {
        /// Forwarding node.
        node: NodeId,
        /// Chosen next hop.
        next: NodeId,
        /// Final destination of the packet.
        dst: NodeId,
        /// Flow id.
        flow: u32,
        /// Sequence within the flow.
        seq: u32,
    },
    /// The routing layer dropped a data packet (kernel-emitted, like
    /// [`DataSend`]).
    ///
    /// [`DataSend`]: TraceEvent::DataSend
    DataDrop {
        /// Dropping node.
        node: NodeId,
        /// Flow id.
        flow: u32,
        /// Sequence within the flow.
        seq: u32,
        /// Why the packet was dropped.
        reason: DropReason,
    },
    /// A control frame failed wire decoding (truncated or mutated by
    /// the fault layer) and was discarded by the routing layer instead
    /// of being processed. Counted under [`DropReason::Malformed`].
    ControlDrop {
        /// The node that rejected the frame.
        node: NodeId,
        /// Claimed message kind of the undecodable frame.
        kind: ControlKind,
    },
    /// A route was installed or its successor replaced.
    RouteInstall {
        /// The node whose table changed.
        node: NodeId,
        /// Destination of the route.
        dest: NodeId,
        /// New successor.
        next: NodeId,
        /// Invariants before the mutation (`None`: no prior entry).
        before: Option<InvariantSnapshot>,
        /// Invariants after the mutation.
        after: InvariantSnapshot,
    },
    /// A route was marked unusable (its `sn`/`fd` history survives).
    RouteInvalidate {
        /// The node whose table changed.
        node: NodeId,
        /// Destination of the route.
        dest: NodeId,
        /// Stored sequence number at invalidation time.
        seqno: Option<u64>,
        /// Why.
        cause: InvalidateCause,
    },
    /// A node raised its *own* destination sequence number (LDR path
    /// reset, reverse probe, or an AODV-style increment).
    SeqnoReset {
        /// The destination whose number rose.
        node: NodeId,
        /// Value before.
        old: u64,
        /// Value after.
        new: u64,
    },
    /// The route table judged one advertisement `(sn*, d*)` against the
    /// stored invariants — the per-advert NDC verdict.
    AdvertConsidered {
        /// The judging node.
        node: NodeId,
        /// Advertised destination.
        dest: NodeId,
        /// Neighbour the advertisement arrived from.
        from: NodeId,
        /// Advertised sequence number (scalarised).
        adv_sn: u64,
        /// Advertised distance `d*`.
        adv_d: u32,
        /// Stored invariants before the decision.
        before: Option<InvariantSnapshot>,
        /// Stored invariants after the decision.
        after: Option<InvariantSnapshot>,
        /// The decision.
        verdict: RouteVerdict,
    },
    /// An intermediate node decided whether its stored route may answer
    /// a solicitation in the destination's stead — the SDC verdict.
    SolicitVerdict {
        /// The deciding node.
        node: NodeId,
        /// Solicited destination.
        dest: NodeId,
        /// Whether the solicitation carried the T (path-reset) bit.
        t_bit: bool,
        /// Whether SDC allowed the reply.
        allowed: bool,
    },
    /// A node originated a route request.
    RreqStart {
        /// Origin.
        node: NodeId,
        /// Solicited destination.
        dest: NodeId,
        /// Request id (unique per origin).
        rreqid: u32,
        /// Time-to-live of this (expanding-ring) attempt.
        ttl: u8,
    },
    /// A node relayed a route request it was not the target of.
    RreqRelay {
        /// Relay.
        node: NodeId,
        /// Solicited destination.
        dest: NodeId,
        /// The request's origin.
        origin: NodeId,
    },
    /// A node sent (originated or relayed) a route reply.
    RrepSend {
        /// Sender.
        node: NodeId,
        /// Advertised destination.
        dest: NodeId,
        /// Reverse-path neighbour the reply was unicast to.
        to: NodeId,
        /// Advertised distance.
        dist: u32,
    },
    /// A node broadcast a route error.
    RerrSend {
        /// Sender.
        node: NodeId,
        /// Destinations named in the error.
        dests: Vec<NodeId>,
    },
    /// The fault layer applied a scheduled adverse action
    /// ([`crate::faults::FaultAction`]); recorded so the invariant
    /// auditor can attribute any subsequent breach to the provoking
    /// fault.
    FaultInjected {
        /// The node the fault centres on (an endpoint for link faults,
        /// the first group member for partitions, `NodeId(0)` for a
        /// global heal).
        node: NodeId,
        /// Which kind of fault fired.
        kind: FaultKind,
    },
    /// A crashed node came back up with total state loss, immediately
    /// before its protocol's restart callback runs.
    NodeRestarted {
        /// The restarting node.
        node: NodeId,
    },
}

/// The kind of an injected fault (a compact tag mirroring
/// [`crate::faults::FaultAction`] for trace consumers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A node crashed (its restart is traced separately).
    Crash,
    /// An administrative link cut.
    LinkDown,
    /// An administrative link restoration.
    LinkUp,
    /// A regional partition was installed.
    Partition,
    /// The partition and all link cuts were cleared.
    Heal,
    /// Per-link loss/corruption rates changed.
    Impair,
    /// A stale control frame was re-emitted.
    Replay,
}

impl TraceEvent {
    /// The node the event happened at (for per-node timelines).
    pub fn node(&self) -> NodeId {
        match *self {
            TraceEvent::TxStart { node, .. }
            | TraceEvent::RxOk { node, .. }
            | TraceEvent::RxCollision { node }
            | TraceEvent::MacGiveUp { node, .. }
            | TraceEvent::Delivered { node, .. }
            | TraceEvent::DataSend { node, .. }
            | TraceEvent::DataDrop { node, .. }
            | TraceEvent::ControlDrop { node, .. }
            | TraceEvent::RouteInstall { node, .. }
            | TraceEvent::RouteInvalidate { node, .. }
            | TraceEvent::SeqnoReset { node, .. }
            | TraceEvent::AdvertConsidered { node, .. }
            | TraceEvent::SolicitVerdict { node, .. }
            | TraceEvent::RreqStart { node, .. }
            | TraceEvent::RreqRelay { node, .. }
            | TraceEvent::RrepSend { node, .. }
            | TraceEvent::RerrSend { node, .. }
            | TraceEvent::FaultInjected { node, .. }
            | TraceEvent::NodeRestarted { node } => node,
        }
    }

    /// Whether this is a routing-layer event (vs. link-layer).
    pub fn is_routing(&self) -> bool {
        matches!(
            self,
            TraceEvent::RouteInstall { .. }
                | TraceEvent::RouteInvalidate { .. }
                | TraceEvent::SeqnoReset { .. }
                | TraceEvent::AdvertConsidered { .. }
                | TraceEvent::SolicitVerdict { .. }
                | TraceEvent::RreqStart { .. }
                | TraceEvent::RreqRelay { .. }
                | TraceEvent::RrepSend { .. }
                | TraceEvent::RerrSend { .. }
        )
    }
}

/// Receives trace events from the simulator.
pub trait TraceSink: Send {
    /// Records one event at simulated time `t`.
    fn record(&mut self, t: SimTime, event: TraceEvent);
}

/// An in-memory event log.
#[derive(Debug, Default)]
pub struct MemoryTrace {
    events: Vec<(SimTime, TraceEvent)>,
}

impl MemoryTrace {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shareable handle usable both as the world's sink and for
    /// later inspection.
    pub fn shared() -> Arc<Mutex<MemoryTrace>> {
        Arc::new(Mutex::new(MemoryTrace::new()))
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[(SimTime, TraceEvent)] {
        &self.events
    }

    /// Number of events matching a predicate.
    pub fn count<F: Fn(&TraceEvent) -> bool>(&self, f: F) -> usize {
        self.events.iter().filter(|(_, e)| f(e)).count()
    }
}

impl TraceSink for MemoryTrace {
    fn record(&mut self, t: SimTime, event: TraceEvent) {
        self.events.push((t, event));
    }
}

impl TraceSink for Arc<Mutex<MemoryTrace>> {
    fn record(&mut self, t: SimTime, event: TraceEvent) {
        // A poisoned lock means a panic elsewhere already ended the
        // run; silently dropping the event beats a panic-in-panic.
        if let Ok(mut log) = self.lock() {
            log.record(t, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_trace_records_in_order() {
        let mut tr = MemoryTrace::new();
        tr.record(SimTime::from_secs(1), TraceEvent::RxCollision { node: NodeId(1) });
        tr.record(
            SimTime::from_secs(2),
            TraceEvent::Delivered { node: NodeId(2), flow: 1, seq: 0 },
        );
        assert_eq!(tr.events().len(), 2);
        assert!(tr.events()[0].0 < tr.events()[1].0);
        assert_eq!(tr.count(|e| matches!(e, TraceEvent::Delivered { .. })), 1);
    }

    #[test]
    fn node_and_layer_classification() {
        let link = TraceEvent::RxCollision { node: NodeId(4) };
        assert_eq!(link.node(), NodeId(4));
        assert!(!link.is_routing());
        let routing = TraceEvent::RouteInstall {
            node: NodeId(2),
            dest: NodeId(9),
            next: NodeId(3),
            before: None,
            after: InvariantSnapshot { sn: Some(7), d: 2, fd: 2 },
        };
        assert_eq!(routing.node(), NodeId(2));
        assert!(routing.is_routing());
    }

    #[test]
    fn shared_handle_feeds_the_same_log() {
        let shared = MemoryTrace::shared();
        let mut sink: Box<dyn TraceSink> = Box::new(shared.clone());
        sink.record(SimTime::ZERO, TraceEvent::RxOk { node: NodeId(0), uid: Some(7) });
        assert_eq!(shared.lock().unwrap().events().len(), 1);
    }
}
