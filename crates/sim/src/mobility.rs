//! Node mobility models.
//!
//! The evaluation uses the random waypoint model (speeds uniform in
//! [1, 20] m/s, configurable pause time). Static and scripted models are
//! provided for unit tests and worked examples.
//!
//! # Determinism contract
//!
//! Mobility is a pure function of the trial seed: every model draws
//! exclusively from the [`SimRng`] it was constructed with and never
//! consults wall-clock time or OS entropy, so node trajectories — and
//! therefore connectivity, collisions and every downstream metric — are
//! bit-for-bit reproducible for a given seed (see [`crate::rng`]).

use crate::geometry::{Position, Terrain};
use crate::packet::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;

/// A mobility model answers "where is node `i` at time `t`".
///
/// Queries take `&self` so that position lookups compose with other
/// immutable borrows of the simulator (`World::neighbors` is a
/// read-only query). Models that advance internal state lazily (e.g.
/// [`RandomWaypoint`]'s legs) keep it behind interior mutability; the
/// simulator only ever queries with non-decreasing times per run
/// (arbitrary re-queries at earlier times are not required to be exact
/// for lazy models, and the built-in models never receive them).
pub trait MobilityModel: Send {
    /// Position of `node` at time `t`.
    fn position(&self, node: NodeId, t: SimTime) -> Position;
    /// Number of nodes this model covers.
    fn len(&self) -> usize;
    /// Whether the model covers zero nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Nodes that never move.
#[derive(Clone, Debug)]
pub struct StaticMobility {
    positions: Vec<Position>,
}

impl StaticMobility {
    /// Fixed positions, one per node.
    pub fn new(positions: Vec<Position>) -> Self {
        StaticMobility { positions }
    }

    /// `n` nodes in a straight horizontal line with the given spacing —
    /// the classic "chain" topology for protocol tests.
    pub fn line(n: usize, spacing: f64) -> Self {
        StaticMobility {
            positions: (0..n).map(|i| Position::new(i as f64 * spacing, 0.0)).collect(),
        }
    }

    /// `n` nodes placed uniformly at random in `terrain`.
    pub fn random(n: usize, terrain: Terrain, rng: &mut SimRng) -> Self {
        StaticMobility { positions: (0..n).map(|_| terrain.random_position(rng)).collect() }
    }

    /// `n` nodes on a near-square grid filling `terrain`.
    pub fn grid(n: usize, terrain: Terrain) -> Self {
        let cols = (n as f64).sqrt().ceil().max(1.0) as usize;
        let rows = n.div_ceil(cols);
        let positions = (0..n)
            .map(|i| {
                let c = i % cols;
                let r = i / cols;
                Position::new(
                    (c as f64 + 0.5) * terrain.width / cols as f64,
                    (r as f64 + 0.5) * terrain.height / rows.max(1) as f64,
                )
            })
            .collect();
        StaticMobility { positions }
    }
}

impl MobilityModel for StaticMobility {
    fn position(&self, node: NodeId, _t: SimTime) -> Position {
        self.positions[node.index()]
    }
    fn len(&self) -> usize {
        self.positions.len()
    }
}

/// Piecewise-linear scripted motion: each node follows (time, position)
/// keyframes with linear interpolation, holding the last position
/// afterwards. Used to stage link breaks at exact instants in tests.
#[derive(Clone, Debug)]
pub struct ScriptedMobility {
    /// Per node: keyframes sorted by time; must be non-empty.
    tracks: Vec<Vec<(SimTime, Position)>>,
}

impl ScriptedMobility {
    /// Builds a scripted model.
    ///
    /// # Panics
    ///
    /// Panics if any track is empty or has out-of-order keyframes.
    pub fn new(tracks: Vec<Vec<(SimTime, Position)>>) -> Self {
        for (i, tr) in tracks.iter().enumerate() {
            assert!(!tr.is_empty(), "node {i} has an empty track");
            assert!(tr.windows(2).all(|w| w[0].0 <= w[1].0), "node {i} keyframes out of order");
        }
        ScriptedMobility { tracks }
    }
}

impl MobilityModel for ScriptedMobility {
    fn position(&self, node: NodeId, t: SimTime) -> Position {
        let tr = &self.tracks[node.index()];
        if t <= tr[0].0 {
            return tr[0].1;
        }
        for w in tr.windows(2) {
            let (t0, p0) = w[0];
            let (t1, p1) = w[1];
            if t <= t1 {
                let span = (t1 - t0).as_nanos();
                if span == 0 {
                    return p1;
                }
                let f = (t - t0).as_nanos() as f64 / span as f64;
                return p0.lerp(p1, f);
            }
        }
        // Past the final keyframe the node parks there. The constructor
        // rejects empty tracks, so `last()` always yields; the fallback
        // keeps this path panic-free anyway.
        tr.last().map_or(tr[0].1, |kf| kf.1)
    }
    fn len(&self) -> usize {
        self.tracks.len()
    }
}

/// One node's random-waypoint state: pause at `from` until `move_start`,
/// travel to `to` arriving at `move_end`, then pause again, repeat.
#[derive(Clone, Debug)]
struct Leg {
    from: Position,
    to: Position,
    move_start: SimTime,
    move_end: SimTime,
}

/// The lazily advanced part of [`RandomWaypoint`]: the RNG and the
/// current leg per node. Kept behind a `RefCell` so `position` can take
/// `&self` (queries are logically read-only; the legs are a cache of
/// the trajectory the seed determines).
#[derive(Clone, Debug)]
struct RwpState {
    rng: SimRng,
    legs: Vec<Leg>,
}

impl RwpState {
    fn next_leg(
        &mut self,
        terrain: Terrain,
        pause: SimDuration,
        min_speed: f64,
        max_speed: f64,
        from: Position,
        pause_from: SimTime,
    ) -> Leg {
        let to = terrain.random_position(&mut self.rng);
        let speed = self.rng.range_f64(min_speed, max_speed);
        let dist = from.distance(to);
        let move_start = pause_from + pause;
        let travel = SimDuration::from_secs_f64(dist / speed);
        Leg { from, to, move_start, move_end: move_start + travel }
    }
}

/// The random waypoint model of the evaluation (§4): each node pauses
/// for `pause`, picks a uniform destination in the terrain and a uniform
/// speed in `[min_speed, max_speed]`, travels there, and repeats.
#[derive(Clone, Debug)]
pub struct RandomWaypoint {
    terrain: Terrain,
    pause: SimDuration,
    min_speed: f64,
    max_speed: f64,
    state: RefCell<RwpState>,
}

impl RandomWaypoint {
    /// Creates the model with `n` nodes at uniform random initial
    /// positions, initially pausing.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_speed <= max_speed`.
    pub fn new(
        n: usize,
        terrain: Terrain,
        pause: SimDuration,
        min_speed: f64,
        max_speed: f64,
        mut rng: SimRng,
    ) -> Self {
        assert!(
            min_speed > 0.0 && min_speed <= max_speed,
            "speeds must satisfy 0 < min <= max (got {min_speed}..{max_speed})"
        );
        let starts: Vec<Position> = (0..n).map(|_| terrain.random_position(&mut rng)).collect();
        let mut state = RwpState { rng, legs: Vec::with_capacity(n) };
        // A real first leg per node (pause at the start, then move).
        for p in starts {
            let leg = state.next_leg(terrain, pause, min_speed, max_speed, p, SimTime::ZERO);
            state.legs.push(leg);
        }
        RandomWaypoint { terrain, pause, min_speed, max_speed, state: RefCell::new(state) }
    }
}

impl MobilityModel for RandomWaypoint {
    fn position(&self, node: NodeId, t: SimTime) -> Position {
        let i = node.index();
        let mut st = self.state.borrow_mut();
        // Advance past any completed legs (lazily).
        while t > st.legs[i].move_end + self.pause {
            let arrived_at = st.legs[i].move_end;
            let from = st.legs[i].to;
            st.legs[i] = st.next_leg(
                self.terrain,
                self.pause,
                self.min_speed,
                self.max_speed,
                from,
                arrived_at,
            );
        }
        let leg = &st.legs[i];
        if t <= leg.move_start {
            leg.from
        } else if t >= leg.move_end {
            leg.to
        } else {
            let span = (leg.move_end - leg.move_start).as_nanos();
            let f = (t - leg.move_start).as_nanos() as f64 / span as f64;
            leg.from.lerp(leg.to, f)
        }
    }
    fn len(&self) -> usize {
        self.state.borrow().legs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_line_spacing() {
        let m = StaticMobility::line(4, 200.0);
        assert_eq!(m.len(), 4);
        assert_eq!(m.position(NodeId(3), SimTime::from_secs(5)).x, 600.0);
        assert_eq!(m.position(NodeId(0), SimTime::ZERO).y, 0.0);
    }

    #[test]
    fn static_grid_in_terrain() {
        let terrain = Terrain::new(1000.0, 500.0);
        let m = StaticMobility::grid(10, terrain);
        for i in 0..10 {
            assert!(terrain.contains(m.position(NodeId(i), SimTime::ZERO)));
        }
    }

    #[test]
    fn scripted_interpolates() {
        let m = ScriptedMobility::new(vec![vec![
            (SimTime::ZERO, Position::new(0.0, 0.0)),
            (SimTime::from_secs(10), Position::new(100.0, 0.0)),
        ]]);
        assert_eq!(m.position(NodeId(0), SimTime::from_secs(5)).x, 50.0);
        assert_eq!(m.position(NodeId(0), SimTime::from_secs(20)).x, 100.0);
        assert_eq!(m.position(NodeId(0), SimTime::ZERO).x, 0.0);
    }

    #[test]
    #[should_panic]
    fn scripted_rejects_empty_track() {
        ScriptedMobility::new(vec![vec![]]);
    }

    #[test]
    fn rwp_stays_in_terrain_with_monotone_queries() {
        let terrain = Terrain::new(1500.0, 300.0);
        let rng = SimRng::stream(1, "mobility");
        let m = RandomWaypoint::new(10, terrain, SimDuration::from_secs(30), 1.0, 20.0, rng);
        for step in 0..900 {
            let t = SimTime::from_secs(step);
            for n in 0..10 {
                let p = m.position(NodeId(n), t);
                assert!(terrain.contains(p), "node {n} escaped at {t:?}: {p:?}");
            }
        }
    }

    #[test]
    fn rwp_nodes_actually_move() {
        let terrain = Terrain::new(1500.0, 300.0);
        let rng = SimRng::stream(2, "mobility");
        let m = RandomWaypoint::new(5, terrain, SimDuration::ZERO, 5.0, 5.0, rng);
        let before = m.position(NodeId(0), SimTime::ZERO);
        let after = m.position(NodeId(0), SimTime::from_secs(60));
        assert!(before.distance(after) > 1.0, "node never moved");
    }

    #[test]
    fn rwp_respects_pause() {
        let terrain = Terrain::new(1000.0, 1000.0);
        let rng = SimRng::stream(3, "mobility");
        let m = RandomWaypoint::new(3, terrain, SimDuration::from_secs(100), 1.0, 2.0, rng);
        // During the initial pause nodes must hold still.
        let p0 = m.position(NodeId(1), SimTime::ZERO);
        let p1 = m.position(NodeId(1), SimTime::from_secs(50));
        let p2 = m.position(NodeId(1), SimTime::from_secs(99));
        assert_eq!(p0, p1);
        assert_eq!(p1, p2);
    }

    #[test]
    fn rwp_speed_bound_respected() {
        let terrain = Terrain::new(2200.0, 600.0);
        let rng = SimRng::stream(4, "mobility");
        let m = RandomWaypoint::new(8, terrain, SimDuration::ZERO, 1.0, 20.0, rng);
        let mut prev: Vec<Position> =
            (0..8).map(|n| m.position(NodeId(n), SimTime::ZERO)).collect();
        for step in 1..=300 {
            let t = SimTime::from_secs(step);
            for n in 0..8u16 {
                let p = m.position(NodeId(n), t);
                let moved = prev[n as usize].distance(p);
                assert!(moved <= 20.0 + 1e-6, "node {n} moved {moved} m in 1 s");
                prev[n as usize] = p;
            }
        }
    }

    #[test]
    #[should_panic]
    fn rwp_rejects_zero_speed() {
        let terrain = Terrain::new(100.0, 100.0);
        RandomWaypoint::new(1, terrain, SimDuration::ZERO, 0.0, 1.0, SimRng::from_seed(0));
    }
}
