//! Node mobility models.
//!
//! The evaluation uses the random waypoint model (speeds uniform in
//! [1, 20] m/s, configurable pause time). Static and scripted models are
//! provided for unit tests and worked examples.
//!
//! # Determinism contract
//!
//! Mobility is a pure function of the trial seed: every model draws
//! exclusively from the [`SimRng`] it was constructed with and never
//! consults wall-clock time or OS entropy, so node trajectories — and
//! therefore connectivity, collisions and every downstream metric — are
//! bit-for-bit reproducible for a given seed (see [`crate::rng`]).
//!
//! [`RandomWaypoint`] additionally splits its seed RNG into one
//! independent stream *per node* at construction, so each node's
//! trajectory is a pure function of `(seed, node)` alone. This makes
//! `position` queries order-independent: skipping or reordering
//! queries (as the spatial neighbor index in [`crate::spatial`] does)
//! cannot change any trajectory, which is what lets grid-backed and
//! linear-scan runs stay byte-identical.

use crate::geometry::{Position, Terrain};
use crate::packet::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;

/// One straight-line motion segment plus the promise horizon through
/// which it describes a node's trajectory exactly.
///
/// `pos_at` is **the** canonical position formula: every model whose
/// `position` can be phrased as a leg evaluates it through this method
/// (and so does the epoch cache in [`crate::spatial`]), which is what
/// makes cached and direct lookups bitwise identical.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MotionLeg {
    /// Where the node sits until `move_start`.
    pub from: Position,
    /// Where it sits from `move_end` on.
    pub to: Position,
    /// Departure instant.
    pub move_start: SimTime,
    /// Arrival instant.
    pub move_end: SimTime,
    /// The promise: for every `t ≤ valid_until`, `pos_at(t)` equals
    /// `position(node, t)` bit for bit. Queries beyond it must fetch a
    /// fresh leg — the epoch-cache invalidation rule.
    pub valid_until: SimTime,
}

impl MotionLeg {
    /// A node parked at `pos` through `valid_until` (degenerate leg).
    pub fn parked(pos: Position, valid_until: SimTime) -> Self {
        MotionLeg {
            from: pos,
            to: pos,
            move_start: SimTime::ZERO,
            move_end: SimTime::ZERO,
            valid_until,
        }
    }

    /// The leg's position at `t`: `from` before departure, `to` from
    /// arrival on, linear interpolation in between.
    pub fn pos_at(&self, t: SimTime) -> Position {
        if t <= self.move_start {
            self.from
        } else if t >= self.move_end {
            self.to
        } else {
            let span = (self.move_end - self.move_start).as_nanos();
            let f = (t - self.move_start).as_nanos() as f64 / span as f64;
            self.from.lerp(self.to, f)
        }
    }
}

/// A mobility model answers "where is node `i` at time `t`".
///
/// Queries take `&self` so that position lookups compose with other
/// immutable borrows of the simulator (`World::neighbors` is a
/// read-only query). Models that advance internal state lazily (e.g.
/// [`RandomWaypoint`]'s legs) keep it behind interior mutability; the
/// simulator only ever queries with non-decreasing times per run
/// (arbitrary re-queries at earlier times are not required to be exact
/// for lazy models, and the built-in models never receive them).
pub trait MobilityModel: Send {
    /// Position of `node` at time `t`.
    fn position(&self, node: NodeId, t: SimTime) -> Position;
    /// Number of nodes this model covers.
    fn len(&self) -> usize;
    /// Whether the model covers zero nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Position of `node` at `t` plus a *hold promise*: the node sits
    /// exactly at the returned position for every `t' ∈ [t, hold]`.
    /// Position caches (the epoch cache in [`crate::spatial`]) may
    /// serve queries inside the hold window without consulting the
    /// model again. The default promises nothing (`hold == t`); models
    /// with piecewise motion (pauses, static nodes) override it.
    fn position_hold(&self, node: NodeId, t: SimTime) -> (Position, SimTime) {
        (self.position(node, t), t)
    }
    /// The motion leg covering `node` at `t`
    /// ([`MotionLeg::pos_at`] equals `position` for every query time up
    /// to [`MotionLeg::valid_until`]). The default wraps
    /// `position_hold` in a parked leg — exact, but it promises nothing
    /// beyond the hold window; models with linear motion override it so
    /// caches can serve a whole leg from one lookup.
    fn motion_leg(&self, node: NodeId, t: SimTime) -> MotionLeg {
        let (pos, hold) = self.position_hold(node, t);
        MotionLeg::parked(pos, hold)
    }
    /// An upper bound on any node's speed in metres per second, if the
    /// model can promise one. The spatial neighbor index needs a finite
    /// bound to size its query slack; `None` (the conservative default)
    /// disables grid-backed queries and falls back to the linear scan.
    fn max_speed_mps(&self) -> Option<f64> {
        None
    }
}

/// Nodes that never move.
#[derive(Clone, Debug)]
pub struct StaticMobility {
    positions: Vec<Position>,
}

impl StaticMobility {
    /// Fixed positions, one per node.
    pub fn new(positions: Vec<Position>) -> Self {
        StaticMobility { positions }
    }

    /// `n` nodes in a straight horizontal line with the given spacing —
    /// the classic "chain" topology for protocol tests.
    pub fn line(n: usize, spacing: f64) -> Self {
        StaticMobility {
            positions: (0..n).map(|i| Position::new(i as f64 * spacing, 0.0)).collect(),
        }
    }

    /// `n` nodes placed uniformly at random in `terrain`.
    pub fn random(n: usize, terrain: Terrain, rng: &mut SimRng) -> Self {
        StaticMobility { positions: (0..n).map(|_| terrain.random_position(rng)).collect() }
    }

    /// `n` nodes on a near-square grid filling `terrain`.
    pub fn grid(n: usize, terrain: Terrain) -> Self {
        let cols = (n as f64).sqrt().ceil().max(1.0) as usize;
        let rows = n.div_ceil(cols);
        let positions = (0..n)
            .map(|i| {
                let c = i % cols;
                let r = i / cols;
                Position::new(
                    (c as f64 + 0.5) * terrain.width / cols as f64,
                    (r as f64 + 0.5) * terrain.height / rows.max(1) as f64,
                )
            })
            .collect();
        StaticMobility { positions }
    }
}

impl MobilityModel for StaticMobility {
    fn position(&self, node: NodeId, _t: SimTime) -> Position {
        self.positions[node.index()]
    }
    fn len(&self) -> usize {
        self.positions.len()
    }
    fn position_hold(&self, node: NodeId, _t: SimTime) -> (Position, SimTime) {
        (self.positions[node.index()], SimTime::MAX)
    }
    fn max_speed_mps(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// Piecewise-linear scripted motion: each node follows (time, position)
/// keyframes with linear interpolation, holding the last position
/// afterwards. Used to stage link breaks at exact instants in tests.
#[derive(Clone, Debug)]
pub struct ScriptedMobility {
    /// Per node: keyframes sorted by time; must be non-empty.
    tracks: Vec<Vec<(SimTime, Position)>>,
}

impl ScriptedMobility {
    /// Builds a scripted model.
    ///
    /// # Panics
    ///
    /// Panics if any track is empty or has out-of-order keyframes.
    pub fn new(tracks: Vec<Vec<(SimTime, Position)>>) -> Self {
        for (i, tr) in tracks.iter().enumerate() {
            assert!(!tr.is_empty(), "node {i} has an empty track");
            assert!(tr.windows(2).all(|w| w[0].0 <= w[1].0), "node {i} keyframes out of order");
        }
        ScriptedMobility { tracks }
    }
}

impl MobilityModel for ScriptedMobility {
    fn position(&self, node: NodeId, t: SimTime) -> Position {
        let tr = &self.tracks[node.index()];
        if t <= tr[0].0 {
            return tr[0].1;
        }
        for w in tr.windows(2) {
            let (t0, p0) = w[0];
            let (t1, p1) = w[1];
            if t <= t1 {
                let span = (t1 - t0).as_nanos();
                if span == 0 {
                    return p1;
                }
                let f = (t - t0).as_nanos() as f64 / span as f64;
                return p0.lerp(p1, f);
            }
        }
        // Past the final keyframe the node parks there. The constructor
        // rejects empty tracks, so `last()` always yields; the fallback
        // keeps this path panic-free anyway.
        tr.last().map_or(tr[0].1, |kf| kf.1)
    }
    fn len(&self) -> usize {
        self.tracks.len()
    }
    fn position_hold(&self, node: NodeId, t: SimTime) -> (Position, SimTime) {
        let tr = &self.tracks[node.index()];
        if t <= tr[0].0 {
            return (tr[0].1, tr[0].0);
        }
        for w in tr.windows(2) {
            let (t0, p0) = w[0];
            let (t1, p1) = w[1];
            if t <= t1 {
                let span = (t1 - t0).as_nanos();
                if span == 0 {
                    return (p1, t);
                }
                if p0 == p1 {
                    // Stationary segment: parked at p0 through t1.
                    return (p0, t1);
                }
                let f = (t - t0).as_nanos() as f64 / span as f64;
                return (p0.lerp(p1, f), t);
            }
        }
        // Parked at the final keyframe forever.
        (tr.last().map_or(tr[0].1, |kf| kf.1), SimTime::MAX)
    }
    fn max_speed_mps(&self) -> Option<f64> {
        let mut bound = 0.0f64;
        for tr in &self.tracks {
            for w in tr.windows(2) {
                let (t0, p0) = w[0];
                let (t1, p1) = w[1];
                let span_s = (t1 - t0).as_nanos() as f64 / 1e9;
                let dist = p0.distance(p1);
                if span_s == 0.0 {
                    if dist > 0.0 {
                        // Instant teleport: no finite speed bound exists.
                        return None;
                    }
                } else {
                    bound = bound.max(dist / span_s);
                }
            }
        }
        Some(bound)
    }
}

/// One node's random-waypoint state: pause at `from` until `move_start`,
/// travel to `to` arriving at `move_end`, then pause again, repeat.
#[derive(Clone, Debug)]
struct Leg {
    from: Position,
    to: Position,
    move_start: SimTime,
    move_end: SimTime,
}

/// The lazily advanced part of [`RandomWaypoint`], one entry per node:
/// that node's private RNG stream and its current leg. Kept behind a
/// `RefCell` so `position` can take `&self` (queries are logically
/// read-only; the legs are a cache of the trajectory the seed
/// determines). Because every node draws from its own stream, advancing
/// one node's legs never perturbs another's — queries are
/// order-independent, which the spatial grid's byte-identity guarantee
/// relies on.
#[derive(Clone, Debug)]
struct NodeRwp {
    rng: SimRng,
    leg: Leg,
}

fn next_leg(
    rng: &mut SimRng,
    terrain: Terrain,
    pause: SimDuration,
    min_speed: f64,
    max_speed: f64,
    from: Position,
    pause_from: SimTime,
) -> Leg {
    let to = terrain.random_position(rng);
    let speed = rng.range_f64(min_speed, max_speed);
    let dist = from.distance(to);
    let move_start = pause_from + pause;
    let travel = SimDuration::from_secs_f64(dist / speed);
    Leg { from, to, move_start, move_end: move_start + travel }
}

/// The random waypoint model of the evaluation (§4): each node pauses
/// for `pause`, picks a uniform destination in the terrain and a uniform
/// speed in `[min_speed, max_speed]`, travels there, and repeats.
#[derive(Clone, Debug)]
pub struct RandomWaypoint {
    terrain: Terrain,
    pause: SimDuration,
    min_speed: f64,
    max_speed: f64,
    state: RefCell<Vec<NodeRwp>>,
}

impl RandomWaypoint {
    /// Creates the model with `n` nodes at uniform random initial
    /// positions, initially pausing. The seed RNG is split into one
    /// independent stream per node (in node order), so each trajectory
    /// depends only on `(seed, node)` — never on query order.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_speed <= max_speed`.
    pub fn new(
        n: usize,
        terrain: Terrain,
        pause: SimDuration,
        min_speed: f64,
        max_speed: f64,
        mut rng: SimRng,
    ) -> Self {
        assert!(
            min_speed > 0.0 && min_speed <= max_speed,
            "speeds must satisfy 0 < min <= max (got {min_speed}..{max_speed})"
        );
        let state = (0..n)
            .map(|_| {
                let mut node_rng = rng.split();
                // A real first leg (pause at the start, then move), all
                // drawn from this node's private stream.
                let start = terrain.random_position(&mut node_rng);
                let leg = next_leg(
                    &mut node_rng,
                    terrain,
                    pause,
                    min_speed,
                    max_speed,
                    start,
                    SimTime::ZERO,
                );
                NodeRwp { rng: node_rng, leg }
            })
            .collect();
        RandomWaypoint { terrain, pause, min_speed, max_speed, state: RefCell::new(state) }
    }

    /// Advances node `i` past any completed legs and returns its current
    /// leg at `t` (cloned out of the cache).
    fn leg_at(&self, i: usize, t: SimTime) -> Leg {
        let mut st = self.state.borrow_mut();
        let node = &mut st[i];
        while t > node.leg.move_end + self.pause {
            let arrived_at = node.leg.move_end;
            let from = node.leg.to;
            node.leg = next_leg(
                &mut node.rng,
                self.terrain,
                self.pause,
                self.min_speed,
                self.max_speed,
                from,
                arrived_at,
            );
        }
        node.leg.clone()
    }
}

impl MobilityModel for RandomWaypoint {
    fn position(&self, node: NodeId, t: SimTime) -> Position {
        self.motion_leg(node, t).pos_at(t)
    }
    fn len(&self) -> usize {
        self.state.borrow().len()
    }
    fn position_hold(&self, node: NodeId, t: SimTime) -> (Position, SimTime) {
        let leg = self.motion_leg(node, t);
        if t <= leg.move_start {
            // Pausing at the leg origin until the move starts.
            (leg.from, leg.move_start)
        } else if t >= leg.move_end {
            // Arrived: pausing at the destination through the departure
            // of the next leg (at that exact instant the node is still
            // at `to`, the new leg's own pause origin).
            (leg.to, leg.valid_until)
        } else {
            (leg.pos_at(t), t)
        }
    }
    fn motion_leg(&self, node: NodeId, t: SimTime) -> MotionLeg {
        let leg = self.leg_at(node.index(), t);
        MotionLeg {
            from: leg.from,
            to: leg.to,
            move_start: leg.move_start,
            move_end: leg.move_end,
            // The leg stays current through the post-arrival pause;
            // `leg_at` only advances once t passes `move_end + pause`.
            valid_until: leg.move_end + self.pause,
        }
    }
    fn max_speed_mps(&self) -> Option<f64> {
        Some(self.max_speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_line_spacing() {
        let m = StaticMobility::line(4, 200.0);
        assert_eq!(m.len(), 4);
        assert_eq!(m.position(NodeId(3), SimTime::from_secs(5)).x, 600.0);
        assert_eq!(m.position(NodeId(0), SimTime::ZERO).y, 0.0);
    }

    #[test]
    fn static_grid_in_terrain() {
        let terrain = Terrain::new(1000.0, 500.0);
        let m = StaticMobility::grid(10, terrain);
        for i in 0..10 {
            assert!(terrain.contains(m.position(NodeId(i), SimTime::ZERO)));
        }
    }

    #[test]
    fn scripted_interpolates() {
        let m = ScriptedMobility::new(vec![vec![
            (SimTime::ZERO, Position::new(0.0, 0.0)),
            (SimTime::from_secs(10), Position::new(100.0, 0.0)),
        ]]);
        assert_eq!(m.position(NodeId(0), SimTime::from_secs(5)).x, 50.0);
        assert_eq!(m.position(NodeId(0), SimTime::from_secs(20)).x, 100.0);
        assert_eq!(m.position(NodeId(0), SimTime::ZERO).x, 0.0);
    }

    #[test]
    #[should_panic]
    fn scripted_rejects_empty_track() {
        ScriptedMobility::new(vec![vec![]]);
    }

    #[test]
    fn rwp_stays_in_terrain_with_monotone_queries() {
        let terrain = Terrain::new(1500.0, 300.0);
        let rng = SimRng::stream(1, "mobility");
        let m = RandomWaypoint::new(10, terrain, SimDuration::from_secs(30), 1.0, 20.0, rng);
        for step in 0..900 {
            let t = SimTime::from_secs(step);
            for n in 0..10 {
                let p = m.position(NodeId(n), t);
                assert!(terrain.contains(p), "node {n} escaped at {t:?}: {p:?}");
            }
        }
    }

    #[test]
    fn rwp_nodes_actually_move() {
        let terrain = Terrain::new(1500.0, 300.0);
        let rng = SimRng::stream(2, "mobility");
        let m = RandomWaypoint::new(5, terrain, SimDuration::ZERO, 5.0, 5.0, rng);
        let before = m.position(NodeId(0), SimTime::ZERO);
        let after = m.position(NodeId(0), SimTime::from_secs(60));
        assert!(before.distance(after) > 1.0, "node never moved");
    }

    #[test]
    fn rwp_respects_pause() {
        let terrain = Terrain::new(1000.0, 1000.0);
        let rng = SimRng::stream(3, "mobility");
        let m = RandomWaypoint::new(3, terrain, SimDuration::from_secs(100), 1.0, 2.0, rng);
        // During the initial pause nodes must hold still.
        let p0 = m.position(NodeId(1), SimTime::ZERO);
        let p1 = m.position(NodeId(1), SimTime::from_secs(50));
        let p2 = m.position(NodeId(1), SimTime::from_secs(99));
        assert_eq!(p0, p1);
        assert_eq!(p1, p2);
    }

    #[test]
    fn rwp_speed_bound_respected() {
        let terrain = Terrain::new(2200.0, 600.0);
        let rng = SimRng::stream(4, "mobility");
        let m = RandomWaypoint::new(8, terrain, SimDuration::ZERO, 1.0, 20.0, rng);
        let mut prev: Vec<Position> =
            (0..8).map(|n| m.position(NodeId(n), SimTime::ZERO)).collect();
        for step in 1..=300 {
            let t = SimTime::from_secs(step);
            for n in 0..8u16 {
                let p = m.position(NodeId(n), t);
                let moved = prev[n as usize].distance(p);
                assert!(moved <= 20.0 + 1e-6, "node {n} moved {moved} m in 1 s");
                prev[n as usize] = p;
            }
        }
    }

    #[test]
    #[should_panic]
    fn rwp_rejects_zero_speed() {
        let terrain = Terrain::new(100.0, 100.0);
        RandomWaypoint::new(1, terrain, SimDuration::ZERO, 0.0, 1.0, SimRng::from_seed(0));
    }

    /// The per-node RNG streams make trajectories query-order
    /// independent: a copy that skipped most queries (as the spatial
    /// grid's epoch cache does) must agree with a copy that queried
    /// every node at every step. Queries stay non-decreasing per node,
    /// matching the trait's lazy-advancement contract.
    #[test]
    fn rwp_queries_are_order_independent() {
        let terrain = Terrain::new(1500.0, 300.0);
        let mk = || {
            RandomWaypoint::new(
                6,
                terrain,
                SimDuration::from_secs(5),
                1.0,
                20.0,
                SimRng::stream(7, "mobility"),
            )
        };
        let a = mk();
        let b = mk();
        // Copy `a` skips everyone but node 3 for the first 600 s...
        for step in 0..600 {
            a.position(NodeId(3), SimTime::from_secs(step));
        }
        // ...while copy `b` answers every node at every step.
        for step in 0..600 {
            for n in 0..6 {
                b.position(NodeId(n), SimTime::from_secs(step));
            }
        }
        // From 600 s on the two copies must agree exactly, for every
        // node: the skipped queries perturbed nothing.
        for step in 600..800 {
            let t = SimTime::from_secs(step);
            for n in 0..6 {
                assert_eq!(
                    a.position(NodeId(n), t),
                    b.position(NodeId(n), t),
                    "node {n} diverged at {t:?}"
                );
            }
        }
    }

    /// `position_hold` must agree with `position` at the query time and
    /// the node must actually sit still through the promised hold.
    #[test]
    fn rwp_position_hold_promise_is_sound() {
        let terrain = Terrain::new(1000.0, 1000.0);
        let rng = SimRng::stream(11, "mobility");
        let m = RandomWaypoint::new(4, terrain, SimDuration::from_secs(20), 1.0, 10.0, rng);
        for step in 0..300 {
            let t = SimTime::from_secs(step);
            for n in 0..4 {
                let (p, hold) = m.position_hold(NodeId(n), t);
                assert_eq!(p, m.position(NodeId(n), t));
                assert!(hold >= t);
                if hold > t {
                    // Sample inside and at the end of the hold window.
                    let mid = t + SimDuration::from_nanos((hold - t).as_nanos() / 2);
                    assert_eq!(m.position(NodeId(n), mid), p, "node {n} moved inside hold");
                    assert_eq!(m.position(NodeId(n), hold), p, "node {n} moved at hold end");
                }
            }
        }
    }

    #[test]
    fn max_speed_bounds() {
        assert_eq!(StaticMobility::line(3, 10.0).max_speed_mps(), Some(0.0));
        let terrain = Terrain::new(100.0, 100.0);
        let rwp =
            RandomWaypoint::new(2, terrain, SimDuration::ZERO, 1.0, 17.5, SimRng::from_seed(9));
        assert_eq!(rwp.max_speed_mps(), Some(17.5));
        // Scripted: 100 m in 10 s = 10 m/s.
        let s = ScriptedMobility::new(vec![vec![
            (SimTime::ZERO, Position::new(0.0, 0.0)),
            (SimTime::from_secs(10), Position::new(100.0, 0.0)),
        ]]);
        assert_eq!(s.max_speed_mps(), Some(10.0));
        // A zero-duration teleport has no finite bound.
        let tele = ScriptedMobility::new(vec![vec![
            (SimTime::ZERO, Position::new(0.0, 0.0)),
            (SimTime::ZERO, Position::new(5.0, 0.0)),
        ]]);
        assert_eq!(tele.max_speed_mps(), None);
    }

    #[test]
    fn static_hold_is_forever() {
        let m = StaticMobility::line(2, 50.0);
        let (p, hold) = m.position_hold(NodeId(1), SimTime::from_secs(3));
        assert_eq!(p.x, 50.0);
        assert_eq!(hold, SimTime::MAX);
    }
}
