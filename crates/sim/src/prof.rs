//! Deterministic kernel profiler: per-phase wall-time attribution,
//! counts and histograms, exported as schema-versioned `manet-prof`
//! JSONL.
//!
//! Enabled by [`SimConfig::profile`](crate::config::SimConfig::profile)
//! (off by default). The profiler is *strictly observational*: its
//! wall-clock readings never feed simulation state, so runs with
//! profiling on are byte-identical (metrics, trace, telemetry) to runs
//! with it off — enforced by the on-vs-off differential tests in
//! `crates/bench/tests/prof_purity.rs`. When the flag is off every
//! hook is a single `Option` check; no `Instant` is ever read.
//!
//! # Attribution model
//!
//! The profiler keeps a span *stack*. [`Profiler::enter`] pushes a
//! phase, [`Profiler::exit`] pops it, and the wall time between any
//! two stack transitions accrues to the phase on top of the stack at
//! that moment — i.e. every phase is charged its **self time**
//! (exclusive of nested spans), so the per-phase nanoseconds sum to
//! exactly the measured total and nothing is double-counted. The
//! kernel run loop sits at the bottom of the stack as the
//! [`PHASE_KERN_LOOP`] frame; its self time is the only unnamed
//! residue (loop control, FEL peeks), and
//! [`ProfSnapshot::attribution`] reports the fraction of measured
//! time that landed in any *other* (named) phase.
//!
//! # Determinism contract
//!
//! The JSONL document has two sections:
//!
//! * `count` and `hist` lines are **deterministic**: they derive from
//!   hook-site counters and simulation quantities (FEL depth, window
//!   size, component count) only, so a rerun of the same
//!   `(config, seed)` reproduces them byte-for-byte
//!   ([`deterministic_section`] extracts exactly these lines, and the
//!   rerun-determinism test pins them);
//! * `timing` lines carry raw wall nanoseconds and are **not**
//!   byte-gated — two runs of the same configuration report different
//!   timings, which is the whole point.

use crate::event::Event;
use std::fmt::Write as _;
// xtask:allow(determinism): the profiler is the one sanctioned wall-clock reader in this crate; readings are observational only and never feed simulation state
use std::time::Instant;

/// Schema identifier of the profiler JSONL file.
pub const PROF_SCHEMA: &str = "manet-prof";
/// Schema version stamped into the header; bump on any field change.
pub const PROF_VERSION: u32 = 1;

/// FEL insertion (`EventQueue::schedule`).
pub const PHASE_FEL_PUSH: u16 = 0;
/// FEL extraction (`EventQueue::pop`), including the sift-down.
pub const PHASE_FEL_POP: u16 = 1;
/// Neighbor range query answered by the spatial grid.
pub const PHASE_NEIGHBOR_GRID: u16 = 2;
/// Neighbor range query answered by the linear all-nodes scan.
pub const PHASE_NEIGHBOR_LINEAR: u16 = 3;
/// Routing-protocol callback (`RoutingProtocol` handler execution).
pub const PHASE_PROTOCOL: u16 = 4;
/// Trace emission fan-out (flight recorder, auditor, trace sink).
pub const PHASE_TRACE_EMIT: u16 = 5;
/// Telemetry time-series sampling (`World::take_sample`).
pub const PHASE_TELEMETRY_SAMPLE: u16 = 6;
/// Parallel kernel: window classification + spatial partitioning.
pub const PHASE_PAR_PLAN: u16 = 7;
/// Parallel kernel: window drain and per-component task assembly.
pub const PHASE_PAR_BUILD: u16 = 8;
/// Parallel kernel: shard execution on worker threads (fan-out to
/// join, measured from the coordinator).
pub const PHASE_PAR_EXECUTE: u16 = 9;
/// Parallel kernel: canonical effect replay.
pub const PHASE_PAR_REPLAY: u16 = 10;
/// The kernel run loop itself — the bottom stack frame. Its self time
/// (loop control, FEL peeks) is the only *unattributed* residue; see
/// [`ProfSnapshot::attribution`].
pub const PHASE_KERN_LOOP: u16 = 11;
/// First per-event-kind dispatch phase; kind `k` is phase
/// `DISPATCH_BASE + k` (order of [`Event::KIND_NAMES`]).
pub const DISPATCH_BASE: u16 = 12;
/// Total number of phases (fixed phases plus one dispatch phase per
/// event kind).
pub const N_PHASES: usize = DISPATCH_BASE as usize + Event::KIND_COUNT;

/// Names of the fixed (non-dispatch) phases, in phase-id order.
pub const FIXED_PHASE_NAMES: [&str; DISPATCH_BASE as usize] = [
    "fel_push",
    "fel_pop",
    "neighbor_grid",
    "neighbor_linear",
    "protocol_callback",
    "trace_emit",
    "telemetry_sample",
    "par_plan",
    "par_build",
    "par_execute",
    "par_replay",
    "kern_loop",
];

/// Stable wire name of a phase id.
pub fn phase_name(phase: usize) -> String {
    if phase < DISPATCH_BASE as usize {
        FIXED_PHASE_NAMES[phase].to_string()
    } else {
        let kind = (phase - DISPATCH_BASE as usize).min(Event::KIND_COUNT - 1);
        format!("dispatch_{}", Event::KIND_NAMES[kind])
    }
}

/// Number of log2 histogram buckets (enough for any u64 value).
pub const HIST_BUCKETS: usize = 32;

/// FEL-depth histogram index (depth observed at every pop).
pub const HIST_FEL_DEPTH: usize = 0;
/// Window-size histogram index (events drained per parallel window).
pub const HIST_WINDOW_SIZE: usize = 1;
/// Component-count histogram index (spatial components per parallel
/// window).
pub const HIST_COMPONENT_COUNT: usize = 2;
/// Number of histograms.
pub const N_HISTS: usize = 3;

/// Names of the histograms, in index order.
pub const HIST_NAMES: [&str; N_HISTS] = ["fel_depth", "window_size", "component_count"];

/// A power-of-two histogram: bucket `i` counts values needing `i`
/// significant bits — bucket 0 holds `v == 0`, bucket `i` holds
/// `2^(i-1) ..= 2^i - 1` (bucket 1 is `1`, bucket 2 is `2..=3`, …) —
/// clamped into the last bucket.
fn hist_bucket(v: u64) -> usize {
    let b = (64 - v.leading_zeros()) as usize;
    b.min(HIST_BUCKETS - 1)
}

/// The live profiler attached to a `World` when
/// [`SimConfig::profile`](crate::config::SimConfig::profile) is on.
#[derive(Debug)]
pub struct Profiler {
    /// Wall-clock instant of the last stack transition.
    last: Instant,
    /// Active span stack (phase ids); self time accrues to the top.
    stack: Vec<u16>,
    nanos: [u64; N_PHASES],
    counts: [u64; N_PHASES],
    pool_hits: u64,
    pool_misses: u64,
    hists: [[u64; HIST_BUCKETS]; N_HISTS],
}

/// The single `Instant::now` read, centralized so the justified
/// determinism-lint allow covers exactly one call site.
#[inline]
fn read_wall_clock() -> Instant {
    // xtask:allow(determinism): sole wall-clock read of the profiler; the value is accumulated into observation-only counters and never compared against simulated time
    Instant::now()
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// A fresh profiler with an empty span stack.
    pub fn new() -> Self {
        Profiler {
            last: read_wall_clock(),
            stack: Vec::with_capacity(8),
            nanos: [0; N_PHASES],
            counts: [0; N_PHASES],
            pool_hits: 0,
            pool_misses: 0,
            hists: [[0; HIST_BUCKETS]; N_HISTS],
        }
    }

    /// Accrues the time since the last transition to the current
    /// top-of-stack phase (discarded while the stack is empty — the
    /// kernel is not running then) and restarts the clock.
    #[inline]
    fn flush(&mut self) {
        let now = read_wall_clock();
        if let Some(&top) = self.stack.last() {
            self.nanos[top as usize] += (now - self.last).as_nanos() as u64;
        }
        self.last = now;
    }

    /// Opens a span: subsequent time accrues to `phase` until a nested
    /// span opens or this one exits. Also counts one entry.
    #[inline]
    pub fn enter(&mut self, phase: u16) {
        self.flush();
        self.stack.push(phase);
        self.counts[phase as usize] += 1;
    }

    /// Closes the innermost span.
    #[inline]
    pub fn exit(&mut self) {
        self.flush();
        self.stack.pop();
    }

    /// Retargets the innermost span to `phase` in a single flush: the
    /// sibling span opens exactly where the previous one closed, so —
    /// unlike an `exit` + `enter` pair — no parent-attributed gap is
    /// left between them. Used to fuse the kernel's per-event
    /// `fel_pop` → dispatch sequence.
    #[inline]
    pub fn switch(&mut self, phase: u16) {
        self.flush();
        match self.stack.last_mut() {
            Some(top) => *top = phase,
            None => self.stack.push(phase),
        }
        self.counts[phase as usize] += 1;
    }

    /// Counts one pool take: `hit` when the free list had a spare
    /// buffer to recycle, miss when the take allocated.
    #[inline]
    pub fn pool_event(&mut self, hit: bool) {
        if hit {
            self.pool_hits += 1;
        } else {
            self.pool_misses += 1;
        }
    }

    /// Records `v` into histogram `which` (see the `HIST_*` indices).
    #[inline]
    pub fn record_hist(&mut self, which: usize, v: u64) {
        if let Some(h) = self.hists.get_mut(which) {
            h[hist_bucket(v)] += 1;
        }
    }

    /// A copyable snapshot of everything accumulated so far. The
    /// caller supplies the kernel-truth dispatch counters (they also
    /// count events replayed from parallel workers, which never pass
    /// through a dispatch span).
    pub fn snapshot(
        &self,
        dispatch_counts: [u64; Event::KIND_COUNT],
        events_executed: u64,
        parallel_windows: u64,
    ) -> ProfSnapshot {
        ProfSnapshot {
            nanos: self.nanos,
            counts: self.counts,
            pool_hits: self.pool_hits,
            pool_misses: self.pool_misses,
            hists: self.hists,
            dispatch_counts,
            events_executed,
            parallel_windows,
        }
    }
}

/// An immutable snapshot of one run's profile, renderable as
/// `manet-prof` JSONL via [`prof_to_jsonl`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfSnapshot {
    /// Self-time nanoseconds per phase (phase-id order).
    pub nanos: [u64; N_PHASES],
    /// Span entries per phase (phase-id order).
    pub counts: [u64; N_PHASES],
    /// Pool takes served from a recycled buffer.
    pub pool_hits: u64,
    /// Pool takes that allocated (including pools disabled).
    pub pool_misses: u64,
    /// The log2 histograms ([`HIST_NAMES`] order).
    pub hists: [[u64; HIST_BUCKETS]; N_HISTS],
    /// Kernel dispatch counters by event kind (includes events
    /// replayed from parallel workers).
    pub dispatch_counts: [u64; Event::KIND_COUNT],
    /// Total events the kernel executed.
    pub events_executed: u64,
    /// Windows the parallel kernel fanned out.
    pub parallel_windows: u64,
}

impl ProfSnapshot {
    /// Total measured kernel wall time: the sum of every phase's self
    /// time (self times are exclusive, so this is exact).
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Nanoseconds attributed to a *named* phase — everything except
    /// the [`PHASE_KERN_LOOP`] bottom-frame residue.
    pub fn attributed_nanos(&self) -> u64 {
        self.total_nanos() - self.nanos[PHASE_KERN_LOOP as usize]
    }

    /// Fraction of measured kernel wall time attributed to named
    /// phases (1.0 when nothing was measured). The acceptance gate
    /// requires ≥ 0.95 on the paper scenarios.
    pub fn attribution(&self) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            1.0
        } else {
            self.attributed_nanos() as f64 / total as f64
        }
    }
}

/// The prof file's header line.
pub fn prof_header(
    seed: u64,
    nodes: usize,
    workers: usize,
    protocol: &str,
    scenario: &str,
) -> String {
    format!(
        "{{\"schema\":\"{PROF_SCHEMA}\",\"version\":{PROF_VERSION},\"seed\":{seed},\"nodes\":{nodes},\"workers\":{workers},\"protocol\":\"{}\",\"scenario\":\"{}\"}}",
        crate::telemetry::json_escape(protocol),
        crate::telemetry::json_escape(scenario),
    )
}

/// Renders a snapshot as a `manet-prof/1` JSONL document: header,
/// then the deterministic `count` and `hist` sections, then the
/// non-gated `timing` section (see the module docs for the contract).
pub fn prof_to_jsonl(
    seed: u64,
    nodes: usize,
    workers: usize,
    protocol: &str,
    scenario: &str,
    snap: &ProfSnapshot,
) -> String {
    let mut out = prof_header(seed, nodes, workers, protocol, scenario);
    out.push('\n');
    let mut i = 0u64;
    let count_line = |out: &mut String, i: &mut u64, name: &str, count: u64| {
        let _ =
            writeln!(out, "{{\"i\":{i},\"sect\":\"count\",\"name\":\"{name}\",\"count\":{count}}}");
        *i += 1;
    };
    for (p, name) in FIXED_PHASE_NAMES.iter().enumerate().take(DISPATCH_BASE as usize) {
        count_line(&mut out, &mut i, name, snap.counts[p]);
    }
    // Dispatch counts come from the kernel's own counters: the
    // parallel kernel counts replayed events there too, while a
    // dispatch *span* only opens on the sequential path.
    for (k, name) in Event::KIND_NAMES.iter().enumerate() {
        count_line(&mut out, &mut i, &format!("dispatch_{name}"), snap.dispatch_counts[k]);
    }
    count_line(&mut out, &mut i, "pool_hit", snap.pool_hits);
    count_line(&mut out, &mut i, "pool_miss", snap.pool_misses);
    count_line(&mut out, &mut i, "events_executed", snap.events_executed);
    count_line(&mut out, &mut i, "parallel_windows", snap.parallel_windows);
    for (h, name) in HIST_NAMES.iter().enumerate() {
        let buckets = &snap.hists[h];
        let last = buckets.iter().rposition(|&b| b > 0).map_or(0, |p| p + 1);
        let _ = write!(out, "{{\"i\":{i},\"sect\":\"hist\",\"name\":\"{name}\",\"buckets\":[");
        for (k, b) in buckets[..last].iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("]}\n");
        i += 1;
    }
    let total = snap.total_nanos();
    for p in 0..N_PHASES {
        let _ = writeln!(
            out,
            "{{\"i\":{i},\"sect\":\"timing\",\"name\":\"{}\",\"nanos\":{}}}",
            phase_name(p),
            snap.nanos[p]
        );
        i += 1;
    }
    let _ = writeln!(out, "{{\"i\":{i},\"sect\":\"timing\",\"name\":\"total\",\"nanos\":{total}}}");
    out
}

/// The byte-gated part of a `manet-prof` document: the header plus
/// every `count` and `hist` line, with the wall-clock `timing` lines
/// stripped. Two runs of the same `(config, seed)` produce identical
/// deterministic sections (pinned by test); their timing sections
/// differ freely.
pub fn deterministic_section(doc: &str) -> String {
    let mut out = String::with_capacity(doc.len());
    for line in doc.lines() {
        if !line.contains("\"sect\":\"timing\"") {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled_snapshot() -> ProfSnapshot {
        let mut prof = Profiler::new();
        prof.enter(PHASE_KERN_LOOP);
        prof.enter(PHASE_FEL_POP);
        prof.exit();
        prof.enter(DISPATCH_BASE + 2);
        prof.enter(PHASE_PROTOCOL);
        prof.exit();
        prof.exit();
        prof.exit();
        prof.pool_event(true);
        prof.pool_event(false);
        prof.record_hist(HIST_FEL_DEPTH, 0);
        prof.record_hist(HIST_FEL_DEPTH, 5);
        prof.record_hist(HIST_WINDOW_SIZE, 17);
        let mut dispatch = [0u64; Event::KIND_COUNT];
        dispatch[2] = 1;
        prof.snapshot(dispatch, 1, 0)
    }

    #[test]
    fn phase_names_are_unique_and_total() {
        let names: Vec<String> = (0..N_PHASES).map(phase_name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), N_PHASES, "duplicate phase names: {names:?}");
        assert_eq!(phase_name(PHASE_KERN_LOOP as usize), "kern_loop");
        assert_eq!(phase_name(DISPATCH_BASE as usize), "dispatch_mac_kick");
    }

    #[test]
    fn hist_buckets_follow_log2_of_v_plus_one() {
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(1), 1);
        assert_eq!(hist_bucket(2), 2);
        assert_eq!(hist_bucket(3), 2);
        assert_eq!(hist_bucket(4), 3);
        assert_eq!(hist_bucket(1023), 10);
        assert_eq!(hist_bucket(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn self_time_sums_to_total_and_counts_track_entries() {
        let snap = filled_snapshot();
        assert_eq!(snap.counts[PHASE_KERN_LOOP as usize], 1);
        assert_eq!(snap.counts[PHASE_FEL_POP as usize], 1);
        assert_eq!(snap.counts[PHASE_PROTOCOL as usize], 1);
        assert_eq!(snap.total_nanos(), snap.nanos.iter().sum::<u64>());
        assert!(snap.attribution() <= 1.0 && snap.attribution() >= 0.0);
        assert_eq!(snap.pool_hits, 1);
        assert_eq!(snap.pool_misses, 1);
    }

    #[test]
    fn jsonl_document_is_schema_versioned_and_sectioned() {
        let snap = filled_snapshot();
        let doc = prof_to_jsonl(42, 50, 1, "LDR", "n50-f10-p0", &snap);
        let mut lines = doc.lines();
        let head = lines.next().expect("header");
        assert_eq!(
            head,
            "{\"schema\":\"manet-prof\",\"version\":1,\"seed\":42,\"nodes\":50,\"workers\":1,\"protocol\":\"LDR\",\"scenario\":\"n50-f10-p0\"}"
        );
        assert!(doc.contains("\"sect\":\"count\",\"name\":\"fel_push\""));
        assert!(doc.contains("\"sect\":\"count\",\"name\":\"dispatch_rx_end\",\"count\":1"));
        assert!(doc.contains("\"sect\":\"count\",\"name\":\"pool_hit\",\"count\":1"));
        assert!(doc.contains("\"sect\":\"hist\",\"name\":\"fel_depth\",\"buckets\":[1,0,0,1]"));
        assert!(doc.contains("\"sect\":\"timing\",\"name\":\"total\""));
        for line in doc.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count(), "{line}");
        }
    }

    #[test]
    fn deterministic_section_strips_exactly_the_timing_lines() {
        let snap = filled_snapshot();
        let doc = prof_to_jsonl(42, 50, 1, "LDR", "n50-f10-p0", &snap);
        let det = deterministic_section(&doc);
        assert!(!det.contains("\"sect\":\"timing\""));
        assert!(det.contains("\"schema\":\"manet-prof\""));
        assert!(det.contains("\"sect\":\"count\""));
        assert!(det.contains("\"sect\":\"hist\""));
        let stripped = doc.lines().count() - det.lines().count();
        assert_eq!(stripped, N_PHASES + 1, "one timing line per phase plus the total");
    }

    #[test]
    fn reruns_of_the_same_span_sequence_agree_on_the_deterministic_section() {
        let a = filled_snapshot();
        let b = filled_snapshot();
        let da = deterministic_section(&prof_to_jsonl(1, 2, 1, "p", "s", &a));
        let db = deterministic_section(&prof_to_jsonl(1, 2, 1, "p", "s", &b));
        assert_eq!(da, db, "counts and histograms must not depend on wall time");
    }
}
