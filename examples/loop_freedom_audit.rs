//! The loop-freedom claim, observed live (Theorem 4).
//!
//! Runs LDR and AODV through an aggressive churn scenario (50 fast
//! nodes, zero pause time, 20 flows) with the routing-loop auditor
//! snapshotting every node's successor graph once per simulated second.
//! LDR must show zero loops at every instant; AODV — whose loop
//! avoidance rests solely on sequence numbers — is allowed transient
//! inconsistencies, and usually shows a few.
//!
//! A second stage turns on the *every-mutation* invariant auditor
//! (`SimConfig::invariant_audit`) for a smaller scenario: after every
//! protocol callback it re-checks fd-monotonicity-per-seqno and
//! successor-graph acyclicity, and the first violation yields a
//! forensic dump — the involved nodes' route tables and their recent
//! routing-decision trace. LDR must come through without a report;
//! when AODV trips the acyclicity check, the dump is printed so you
//! can see exactly which adverts built the cycle.
//!
//! Run with `cargo run --release --example loop_freedom_audit -- [seeds]`.

use ldr::{Ldr, LdrConfig};
use manet_baselines::{Aodv, AodvConfig};
use manet_sim::config::SimConfig;
use manet_sim::geometry::Terrain;
use manet_sim::mobility::RandomWaypoint;
use manet_sim::packet::NodeId;
use manet_sim::protocol::RoutingProtocol;
use manet_sim::rng::SimRng;
use manet_sim::time::SimDuration;
use manet_sim::traffic::TrafficConfig;
use manet_sim::world::World;

fn churn_run(
    mut factory: Box<dyn FnMut(NodeId, usize) -> Box<dyn RoutingProtocol>>,
    seed: u64,
) -> (u64, Option<String>) {
    let cfg = SimConfig {
        duration: SimDuration::from_secs(120),
        seed,
        audit_interval: Some(SimDuration::from_secs(1)),
        ..SimConfig::default()
    };
    let mobility = RandomWaypoint::new(
        50,
        Terrain::new(1500.0, 300.0),
        SimDuration::ZERO, // never pause: maximum churn
        1.0,
        20.0,
        SimRng::stream(seed, "mobility"),
    );
    let mut world = World::new(cfg, Box::new(mobility), |id, n| factory(id, n));
    world.with_cbr(TrafficConfig::paper(20));
    world.run_until(manet_sim::time::SimTime::from_secs(120));
    world.finalize();
    let loops = world.metrics().loop_violations;
    let example = world.first_loop.as_ref().map(|v| v.to_string());
    (loops, example)
}

/// Runs a smaller churn scenario with the every-mutation auditor on.
/// Returns `(checks, breaches, rendered forensic dump if any)`.
fn forensic_run(
    mut factory: Box<dyn FnMut(NodeId, usize) -> Box<dyn RoutingProtocol>>,
    seed: u64,
) -> (u64, u64, Option<String>) {
    let cfg = SimConfig {
        duration: SimDuration::from_secs(30),
        seed,
        invariant_audit: true,
        ..SimConfig::default()
    };
    let mobility = RandomWaypoint::new(
        25,
        Terrain::new(1000.0, 300.0),
        SimDuration::ZERO,
        1.0,
        20.0,
        SimRng::stream(seed, "mobility"),
    );
    let mut world = World::new(cfg, Box::new(mobility), |id, n| factory(id, n));
    world.with_cbr(TrafficConfig::paper(10));
    world.run_until(manet_sim::time::SimTime::from_secs(30));
    world.finalize();
    let checks = world.metrics().invariant_checks;
    let breaches = world.metrics().invariant_breaches;
    let dump = world.forensic_report().map(|r| r.to_string());
    (checks, breaches, dump)
}

fn main() {
    let seeds: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3);

    println!("Auditing successor graphs once per simulated second under maximum churn");
    println!("(50 nodes, pause 0, 20 flows, 120 s per seed, {seeds} seeds)\n");

    let mut ldr_total = 0;
    let mut aodv_total = 0;
    for seed in 1..=seeds {
        let (ldr_loops, _) = churn_run(Box::new(Ldr::factory(LdrConfig::default())), seed);
        let (aodv_loops, aodv_example) =
            churn_run(Box::new(Aodv::factory(AodvConfig::default())), seed);
        println!("seed {seed}: LDR {ldr_loops} loops, AODV {aodv_loops} loops");
        if let Some(example) = aodv_example {
            println!("         first AODV cycle: {example}");
        }
        ldr_total += ldr_loops;
        aodv_total += aodv_loops;
        assert_eq!(ldr_loops, 0, "LDR must be loop-free at every instant (Theorem 4)");
    }

    println!("\ntotals: LDR {ldr_total}, AODV {aodv_total}");
    println!(
        "LDR's feasible-distance invariant (NDC) plus destination-controlled \
         resets kept every audited successor graph acyclic."
    );

    println!("\nEvery-mutation audit (25 nodes, 30 s, checks after each callback):");
    let (checks, breaches, report) = forensic_run(Box::new(Ldr::factory(LdrConfig::default())), 1);
    println!("LDR : {checks} checks, {breaches} breaches");
    assert_eq!(breaches, 0, "LDR must pass the every-mutation audit");
    assert!(report.is_none());

    let (checks, breaches, report) =
        forensic_run(Box::new(Aodv::factory(AodvConfig::default())), 1);
    println!("AODV: {checks} checks, {breaches} breaches");
    if let Some(dump) = report {
        println!("\nFirst AODV breach, forensically:\n{dump}");
    }
}
