//! The loop-freedom claim, observed live (Theorem 4).
//!
//! Runs LDR and AODV through an aggressive churn scenario (50 fast
//! nodes, zero pause time, 20 flows) with the routing-loop auditor
//! snapshotting every node's successor graph once per simulated second.
//! LDR must show zero loops at every instant; AODV — whose loop
//! avoidance rests solely on sequence numbers — is allowed transient
//! inconsistencies, and usually shows a few.
//!
//! Run with `cargo run --release --example loop_freedom_audit -- [seeds]`.

use ldr::{Ldr, LdrConfig};
use manet_baselines::{Aodv, AodvConfig};
use manet_sim::config::SimConfig;
use manet_sim::geometry::Terrain;
use manet_sim::mobility::RandomWaypoint;
use manet_sim::packet::NodeId;
use manet_sim::protocol::RoutingProtocol;
use manet_sim::rng::SimRng;
use manet_sim::time::SimDuration;
use manet_sim::traffic::TrafficConfig;
use manet_sim::world::World;

fn churn_run(
    mut factory: Box<dyn FnMut(NodeId, usize) -> Box<dyn RoutingProtocol>>,
    seed: u64,
) -> (u64, Option<String>) {
    let cfg = SimConfig {
        duration: SimDuration::from_secs(120),
        seed,
        audit_interval: Some(SimDuration::from_secs(1)),
        ..SimConfig::default()
    };
    let mobility = RandomWaypoint::new(
        50,
        Terrain::new(1500.0, 300.0),
        SimDuration::ZERO, // never pause: maximum churn
        1.0,
        20.0,
        SimRng::stream(seed, "mobility"),
    );
    let mut world = World::new(cfg, Box::new(mobility), |id, n| factory(id, n));
    world.with_cbr(TrafficConfig::paper(20));
    world.run_until(manet_sim::time::SimTime::from_secs(120));
    world.finalize();
    let loops = world.metrics().loop_violations;
    let example = world.first_loop.as_ref().map(|v| v.to_string());
    (loops, example)
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    println!("Auditing successor graphs once per simulated second under maximum churn");
    println!("(50 nodes, pause 0, 20 flows, 120 s per seed, {seeds} seeds)\n");

    let mut ldr_total = 0;
    let mut aodv_total = 0;
    for seed in 1..=seeds {
        let (ldr_loops, _) = churn_run(Box::new(Ldr::factory(LdrConfig::default())), seed);
        let (aodv_loops, aodv_example) =
            churn_run(Box::new(Aodv::factory(AodvConfig::default())), seed);
        println!("seed {seed}: LDR {ldr_loops} loops, AODV {aodv_loops} loops");
        if let Some(example) = aodv_example {
            println!("         first AODV cycle: {example}");
        }
        ldr_total += ldr_loops;
        aodv_total += aodv_loops;
        assert_eq!(ldr_loops, 0, "LDR must be loop-free at every instant (Theorem 4)");
    }

    println!("\ntotals: LDR {ldr_total}, AODV {aodv_total}");
    println!(
        "LDR's feasible-distance invariant (NDC) plus destination-controlled \
         resets kept every audited successor graph acyclic."
    );
}
