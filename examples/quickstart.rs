//! Quickstart: a staged walk-through in the spirit of the paper's
//! Fig. 1 example (§2.3).
//!
//! A five-node chain `E – B – C – D – T` discovers a route on demand,
//! then the `D – T` leg breaks and LDR re-discovers while the loop
//! auditor confirms that the tables are loop-free at every step. The
//! printed routing tables show the two invariants that make LDR work:
//! the measured distance and the feasible distance (`fd`).
//!
//! Run with `cargo run --release --example quickstart`.

use ldr::{Ldr, LdrConfig};
use manet_sim::config::SimConfig;
use manet_sim::geometry::Position;
use manet_sim::mobility::ScriptedMobility;
use manet_sim::packet::NodeId;
use manet_sim::time::{SimDuration, SimTime};
use manet_sim::world::World;

const NAMES: [&str; 5] = ["E", "B", "C", "D", "T"];

fn print_tables(world: &World, when: &str) {
    println!("\n--- routing tables {when} ---");
    for i in 0..5u16 {
        let dump = world.protocol(NodeId(i)).route_table_dump();
        if dump.is_empty() {
            println!("  {}: (empty)", NAMES[i as usize]);
            continue;
        }
        let rows: Vec<String> = dump
            .iter()
            .map(|r| {
                format!(
                    "{}: via {} d={} fd={} {}",
                    NAMES[r.dest.index()],
                    NAMES[r.next.index()],
                    r.dist,
                    r.feasible_dist.map_or("-".into(), |f| f.to_string()),
                    if r.valid { "ok" } else { "stale" }
                )
            })
            .collect();
        println!("  {}: {}", NAMES[i as usize], rows.join(" | "));
    }
}

fn main() {
    // E(0) B(1) C(2) D(3) T(4) in a 200 m-spaced chain; at t = 10 s,
    // T walks out of D's radio range (275 m), breaking the last leg,
    // and comes back into range of C at 600 m (so the network heals
    // through a shorter path).
    let keyframe = |x: f64| Position::new(x, 0.0);
    let tracks = vec![
        vec![(SimTime::ZERO, keyframe(0.0))],
        vec![(SimTime::ZERO, keyframe(200.0))],
        vec![(SimTime::ZERO, keyframe(400.0))],
        vec![(SimTime::ZERO, keyframe(600.0))],
        vec![
            (SimTime::ZERO, keyframe(800.0)),
            (SimTime::from_secs(10), keyframe(800.0)),
            (SimTime::from_secs(12), keyframe(880.0)), // leaves D's range
            (SimTime::from_secs(20), keyframe(650.0)), // returns near D/C
        ],
    ];
    let mobility = ScriptedMobility::new(tracks);
    let cfg = SimConfig {
        duration: SimDuration::from_secs(30),
        seed: 42,
        audit_interval: Some(SimDuration::from_millis(500)),
        ..SimConfig::default()
    };
    let mut world = World::new(cfg, Box::new(mobility), Ldr::factory(LdrConfig::default()));

    println!("LDR quickstart: E discovers T across a 4-hop chain, survives a break");

    // Phase 1: E sends CBR-ish packets to T starting at t = 1 s.
    for k in 0..100u64 {
        world.schedule_app_packet(SimTime::from_millis(1000 + 250 * k), NodeId(0), NodeId(4), 512);
    }

    world.run_until(SimTime::from_secs(5));
    print_tables(&world, "after the first discovery (t = 5 s)");
    println!(
        "  E's own seqno: {}   T's own seqno: {}",
        world.protocol(NodeId(0)).own_seqno_value().unwrap_or(0.0),
        world.protocol(NodeId(4)).own_seqno_value().unwrap_or(0.0),
    );

    world.run_until(SimTime::from_secs(15));
    print_tables(&world, "just after the D–T break (t = 15 s)");

    world.run_until(SimTime::from_secs(30));
    print_tables(&world, "after healing (t = 30 s)");

    world.finalize();
    let m = world.metrics();
    println!("\n--- outcome ---");
    println!(
        "  originated {}   delivered {} ({:.1}%)",
        m.data_originated,
        m.data_delivered,
        100.0 * m.delivery_ratio()
    );
    println!("  mean latency {:.2} ms", 1000.0 * m.mean_latency_s());
    println!(
        "  RREQ tx {}   RREP tx {:?}",
        m.rreq_tx(),
        m.control_tx.get(&manet_sim::packet::ControlKind::Rrep)
    );
    println!(
        "  destination seqno resets (T-bit path resets): {}",
        world.protocol(NodeId(4)).own_seqno_value().unwrap_or(0.0)
    );
    println!("  loop-audit violations: {} (LDR is loop-free at every instant)", m.loop_violations);
    assert_eq!(m.loop_violations, 0);
}
