//! Head-to-head comparison of the four protocols the paper evaluates —
//! LDR, AODV, DSR and OLSR — on an identical mobile scenario (same
//! mobility trace seed, same traffic), printing a Table-1-style row per
//! protocol.
//!
//! Run with `cargo run --release --example protocol_comparison -- [flows] [pause] [duration]`.

use ldr::{Ldr, LdrConfig};
use manet_baselines::{Aodv, AodvConfig, Dsr, DsrConfig, Olsr, OlsrConfig};
use manet_sim::config::SimConfig;
use manet_sim::geometry::Terrain;
use manet_sim::metrics::Metrics;
use manet_sim::mobility::RandomWaypoint;
use manet_sim::packet::NodeId;
use manet_sim::protocol::RoutingProtocol;
use manet_sim::rng::SimRng;
use manet_sim::time::SimDuration;
use manet_sim::traffic::TrafficConfig;
use manet_sim::world::World;

fn run(
    name: &str,
    mut factory: Box<dyn FnMut(NodeId, usize) -> Box<dyn RoutingProtocol>>,
    flows: usize,
    pause: u64,
    duration: u64,
) -> (String, Metrics) {
    let seed = 77;
    let cfg = SimConfig {
        duration: SimDuration::from_secs(duration),
        seed,
        audit_interval: Some(SimDuration::from_secs(1)),
        ..SimConfig::default()
    };
    let mobility = RandomWaypoint::new(
        50,
        Terrain::new(1500.0, 300.0),
        SimDuration::from_secs(pause),
        1.0,
        20.0,
        SimRng::stream(seed, "mobility"),
    );
    let mut world = World::new(cfg, Box::new(mobility), |id, n| factory(id, n));
    world.with_cbr(TrafficConfig::paper(flows));
    (name.to_string(), world.run())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let flows: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let pause: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(60);
    let duration: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(300);

    println!(
        "50 nodes, {flows} CBR flows @ 4 pkt/s x 512 B, pause {pause} s, {duration} s simulated\n"
    );

    let results = vec![
        run("LDR", Box::new(Ldr::factory(LdrConfig::default())), flows, pause, duration),
        run("AODV", Box::new(Aodv::factory(AodvConfig::default())), flows, pause, duration),
        run("DSR", Box::new(Dsr::factory(DsrConfig::draft3())), flows, pause, duration),
        run("OLSR", Box::new(Olsr::factory(OlsrConfig::default())), flows, pause, duration),
    ];

    println!(
        "{:<6} {:>9} {:>12} {:>10} {:>10} {:>11} {:>11} {:>10} {:>7}",
        "proto",
        "delivery",
        "latency(ms)",
        "net load",
        "RREQ load",
        "RREP init",
        "RREP recv",
        "seqno",
        "loops"
    );
    for (name, m) in &results {
        println!(
            "{:<6} {:>8.1}% {:>12.1} {:>10.2} {:>10.2} {:>11.2} {:>11.2} {:>10.1} {:>7}",
            name,
            100.0 * m.delivery_ratio(),
            1000.0 * m.mean_latency_s(),
            m.network_load(),
            m.rreq_load(),
            m.rrep_init_per_rreq(),
            m.rrep_recv_per_rreq(),
            m.mean_own_seqno,
            m.loop_violations,
        );
    }

    let ldr = &results[0].1;
    let aodv = &results[1].1;
    println!("\nThe paper's headline effects, reproduced here:");
    println!("  - LDR is loop-free at every audited instant ({} violations).", ldr.loop_violations);
    if ldr.mean_own_seqno > 0.1 {
        println!(
            "  - AODV's destination sequence numbers grow {:.1}x faster than LDR's \
             ({:.1} vs {:.1}): only LDR destinations control their own numbers.",
            aodv.mean_own_seqno / ldr.mean_own_seqno,
            aodv.mean_own_seqno,
            ldr.mean_own_seqno
        );
    } else {
        println!(
            "  - destination sequence numbers: AODV reached {:.1} while LDR needed \
             no resets at all ({:.1}).",
            aodv.mean_own_seqno, ldr.mean_own_seqno
        );
    }
    println!(
        "  - LDR answers discoveries from more places: {:.2} usable RREPs received \
         per RREQ vs AODV's {:.2}.",
        ldr.rrep_recv_per_rreq(),
        aodv.rrep_recv_per_rreq()
    );
}
