//! A paper-style mobile scenario end to end: 50 random-waypoint nodes
//! on a 1500 m × 300 m field, 10 CBR flows of 512-byte packets at
//! 4 packets/s, LDR routing — then a dump of every §4 metric.
//!
//! Run with `cargo run --release --example mobile_network -- [pause_secs] [duration_secs]`.

use ldr::{Ldr, LdrConfig};
use manet_sim::config::SimConfig;
use manet_sim::geometry::Terrain;
use manet_sim::mobility::RandomWaypoint;
use manet_sim::rng::SimRng;
use manet_sim::time::SimDuration;
use manet_sim::traffic::TrafficConfig;
use manet_sim::world::World;

fn main() {
    let mut args = std::env::args().skip(1);
    let pause: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(120);
    let duration: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(300);
    let seed = 2026;

    println!("LDR over 50 random-waypoint nodes, pause {pause} s, {duration} s simulated");

    let cfg = SimConfig {
        duration: SimDuration::from_secs(duration),
        seed,
        audit_interval: Some(SimDuration::from_secs(1)),
        ..SimConfig::default()
    };
    let mobility = RandomWaypoint::new(
        50,
        Terrain::new(1500.0, 300.0),
        SimDuration::from_secs(pause),
        1.0,
        20.0,
        SimRng::stream(seed, "mobility"),
    );
    let mut world = World::new(cfg, Box::new(mobility), Ldr::factory(LdrConfig::default()));
    world.with_cbr(TrafficConfig::paper(10));
    let m = world.run();

    println!("\n--- traffic ---");
    println!("  originated        {}", m.data_originated);
    println!("  delivered         {} ({:.2}%)", m.data_delivered, 100.0 * m.delivery_ratio());
    println!("  mean latency      {:.2} ms", 1000.0 * m.mean_latency_s());
    println!("  duplicates        {}", m.duplicate_deliveries);

    println!("\n--- control overhead (the paper's load metrics) ---");
    println!("  network load      {:.3} control tx / delivered packet", m.network_load());
    println!("  RREQ load         {:.3} RREQ tx / delivered packet", m.rreq_load());
    println!("  RREP init/RREQ    {:.3}", m.rrep_init_per_rreq());
    println!("  RREP recv/RREQ    {:.3}", m.rrep_recv_per_rreq());
    println!("  control tx        {:?}", m.control_tx);
    println!("  control initiated {:?}", m.control_init);

    println!("\n--- link layer ---");
    println!("  data tx (hop-wise) {}", m.data_tx_hops);
    println!("  collisions         {}", m.collisions);
    println!("  IFQ drops          {}", m.ifq_drops);
    println!("  MAC retry failures {}", m.mac_retry_failures);

    println!("\n--- LDR invariants ---");
    println!("  mean destination seqno {:.2} (AODV's grows ~10x faster)", m.mean_own_seqno);
    println!("  routing-loop audits    {} violations", m.loop_violations);
    println!("  routing drops          {:?}", m.drops);
    assert_eq!(m.loop_violations, 0, "LDR must be loop-free at every instant");
}
