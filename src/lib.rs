//! # ldr-repro — umbrella crate for the LDR reproduction
//!
//! Re-exports the three library crates of the workspace so examples
//! and integration tests can use one dependency:
//!
//! * [`ldr`] — the Labeled Distance Routing protocol (the paper's
//!   contribution);
//! * [`manet_baselines`] — AODV, DSR and OLSR;
//! * [`manet_sim`] — the deterministic discrete-event MANET simulator
//!   they all run on.
//!
//! See the repository `README.md` for a tour, `DESIGN.md` for the
//! system inventory and experiment index, and `EXPERIMENTS.md` for
//! recorded paper-vs-measured results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ldr;
pub use manet_baselines;
pub use manet_sim;
