//! Fault-injection soak: LDR's loop-freedom invariants must survive
//! randomized crash/churn/partition/impairment schedules, the same
//! harness must reproduce AODV's known restart unsoundness, and every
//! faulted trial must replay byte-identically from `(FaultPlan, seed)`.
//!
//! The schedules come from a proptest `Strategy` over [`FaultPlan`], so
//! a failing schedule shrinks (entries are dropped until the minimal
//! provoking suffix remains) and its seed is persisted under
//! `proptest-regressions/`.

use ldr::{Ldr, LdrConfig};
use manet_baselines::{Aodv, AodvConfig};
use manet_sim::config::SimConfig;
use manet_sim::faults::{FaultAction, FaultIntensity, FaultPlan};
use manet_sim::geometry::{Position, Terrain};
use manet_sim::metrics::Metrics;
use manet_sim::mobility::{RandomWaypoint, StaticMobility};
use manet_sim::packet::NodeId;
use manet_sim::rng::SimRng;
use manet_sim::time::{SimDuration, SimTime};
use manet_sim::trace::MemoryTrace;
use manet_sim::traffic::TrafficConfig;
use manet_sim::world::World;
use proptest::prelude::*;
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;
use std::sync::{Arc, Mutex};

/// Generates seeded random [`FaultPlan`]s at graded intensities.
/// Shrinking drops schedule entries — a failing fault schedule
/// minimises to the provoking actions instead of dumping the raw plan.
#[derive(Clone, Debug)]
struct FaultPlanStrategy {
    nodes: u16,
    horizon: SimDuration,
    max_level: u32,
}

impl Strategy for FaultPlanStrategy {
    type Value = FaultPlan;

    fn generate(&self, rng: &mut TestRng) -> FaultPlan {
        let seed = rng.next_u64();
        let level = 1 + rng.below(u64::from(self.max_level)) as u32;
        let intensity = FaultIntensity::level(self.nodes, self.horizon, level);
        FaultPlan::random(&mut SimRng::stream(seed, "fault-plan"), &intensity)
    }

    fn shrink(&self, value: &FaultPlan) -> Vec<FaultPlan> {
        let entries = value.entries();
        let n = entries.len();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        out.push(FaultPlan::default());
        if n > 1 {
            out.push(FaultPlan::new(entries[..n / 2].to_vec()));
            out.push(FaultPlan::new(entries[n / 2..].to_vec()));
        }
        for i in 0..n.min(12) {
            let mut e = entries.to_vec();
            e.remove(i);
            out.push(FaultPlan::new(e));
        }
        out
    }
}

const SOAK_NODES: usize = 10;
const SOAK_SECS: u64 = 15;

/// One faulted LDR trial over a small mobile world with the
/// every-mutation invariant auditor armed.
fn ldr_faulted_run(seed: u64, plan: FaultPlan, flows: usize) -> Metrics {
    let cfg = SimConfig {
        duration: SimDuration::from_secs(SOAK_SECS),
        seed,
        audit_interval: Some(SimDuration::from_millis(500)),
        invariant_audit: true,
        fault_plan: Some(plan),
        ..SimConfig::default()
    };
    let mobility = RandomWaypoint::new(
        SOAK_NODES,
        Terrain::new(900.0, 300.0),
        SimDuration::from_secs(5),
        1.0,
        20.0,
        SimRng::stream(seed, "mobility"),
    );
    let mut world = World::new(cfg, Box::new(mobility), Ldr::factory(LdrConfig::default()));
    world.with_cbr(TrafficConfig::paper(flows));
    world.run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The tentpole soak obligation: across ≥200 random fault schedules
    /// (crashes, link churn, partitions, loss/corruption, replayed
    /// stale adverts), LDR's tables never assemble a routing loop and
    /// never raise a feasible distance under an unchanged sequence
    /// number. Both are checked after every table mutation by the
    /// invariant auditor, with restarts attributed honestly (a wiped
    /// incarnation resets the fd baseline instead of counting as a
    /// breach).
    #[test]
    fn ldr_survives_random_fault_schedules(
        seed in 1u64..100_000,
        plan in FaultPlanStrategy {
            nodes: SOAK_NODES as u16,
            horizon: SimDuration::from_secs(SOAK_SECS),
            max_level: 3,
        },
        flows in 2usize..5,
    ) {
        let m = ldr_faulted_run(seed, plan, flows);
        prop_assert_eq!(m.loop_violations, 0, "LDR built a routing loop under faults");
        prop_assert_eq!(m.invariant_breaches, 0, "fd-monotonicity / acyclicity breached under faults");
    }
}

/// The deterministic restart-unsoundness fixture, shared by the AODV
/// witness and its LDR control below.
///
/// Topology (unit disk, 275 m): a chain `0—1—2—3` at 200 m spacing plus
/// a spur node 4 at (200, 250), in range of node 1 only.
///
/// ```text
///         4
///         |
///   0 --- 1 --- 2 --- 3
/// ```
///
/// Script: node 4 discovers a route to 3 (installing `3 via 1` at the
/// spur), node 1 then crashes with total state loss while the `2—3`
/// link is administratively cut; node 2's route to 3 dies honestly (its
/// forwarding fails and the resulting RERR is addressed to the crashed
/// node), but node 4's stale route survives. When the restarted,
/// amnesiac node 1 re-requests a route to 3, the only possible answer
/// is node 4's stale advertisement — whose route points back through
/// node 1.
fn restart_fixture_world(
    factory: impl FnMut(NodeId, usize) -> Box<dyn manet_sim::protocol::RoutingProtocol> + 'static,
    seed: u64,
) -> World {
    let plan = FaultPlan::new(vec![
        (
            SimTime::from_millis(2000),
            FaultAction::CrashRestart { node: NodeId(1), downtime: SimDuration::from_secs(1) },
        ),
        (SimTime::from_millis(2200), FaultAction::LinkDown { a: NodeId(2), b: NodeId(3) }),
    ]);
    let cfg = SimConfig {
        duration: SimDuration::from_secs(8),
        seed,
        audit_interval: Some(SimDuration::from_millis(250)),
        invariant_audit: true,
        fault_plan: Some(plan),
        ..SimConfig::default()
    };
    let positions = vec![
        Position::new(0.0, 0.0),
        Position::new(200.0, 0.0),
        Position::new(400.0, 0.0),
        Position::new(600.0, 0.0),
        Position::new(200.0, 250.0),
    ];
    let mut world = World::new(cfg, Box::new(StaticMobility::new(positions)), factory);
    // Pre-crash: the spur learns `3 via 1` (and refreshes it).
    world.schedule_app_packet(SimTime::from_millis(1000), NodeId(4), NodeId(3), 256);
    world.schedule_app_packet(SimTime::from_millis(1800), NodeId(4), NodeId(3), 256);
    // During the crash: node 2's forwarding towards 3 fails over the
    // cut link; its route error dies with the crashed precursor.
    world.schedule_app_packet(SimTime::from_millis(2300), NodeId(2), NodeId(3), 256);
    // Post-restart: the amnesiac node re-requests a route to 3.
    for k in 0..3u64 {
        world.schedule_app_packet(SimTime::from_millis(3500 + 100 * k), NodeId(1), NodeId(3), 256);
    }
    world
}

/// Sequence numbers do not guarantee loop freedom (van Glabbeek et
/// al.): a restarted AODV node has lost its own sequence number and
/// its route history, so its sequence-number-less RREQ legitimately
/// draws a stale intermediate reply from the neighbour that still
/// routes through it — and the kernel's honest restart path reproduces
/// the resulting two-node loop.
#[test]
fn aodv_restart_builds_a_routing_loop() {
    let world = restart_fixture_world(Aodv::factory(AodvConfig::default()), 7);
    let m = world.run();
    assert_eq!(m.node_restarts, 1, "the crash/restart must have fired");
    assert!(
        m.loop_violations + m.invariant_breaches > 0,
        "the amnesiac-restart schedule must reproduce AODV's stale-reply loop \
         (loop_violations={}, invariant_breaches={})",
        m.loop_violations,
        m.invariant_breaches,
    );
}

/// The LDR control: the identical fault schedule, workload, topology
/// and seed leave LDR clean — the restarted node's request is treated
/// as a route error by the stale neighbour (request-as-error), so the
/// stale advertisement is purged instead of answered.
#[test]
fn ldr_restart_stays_loop_free_on_the_same_schedule() {
    let world = restart_fixture_world(Ldr::factory(LdrConfig::default()), 7);
    let m = world.run();
    assert_eq!(m.node_restarts, 1, "the crash/restart must have fired");
    assert_eq!(m.loop_violations, 0);
    assert_eq!(m.invariant_breaches, 0);
}

/// A faulted trial is a pure function of `(FaultPlan, seed)`: two runs
/// must agree event-for-event (the full trace log compares equal) and
/// metric-for-metric.
#[test]
fn faulted_trials_replay_byte_identically() {
    let run = || {
        let plan = FaultPlan::random(
            &mut SimRng::stream(4242, "fault-plan"),
            &FaultIntensity::level(8, SimDuration::from_secs(12), 2),
        );
        let cfg = SimConfig {
            duration: SimDuration::from_secs(12),
            seed: 99,
            audit_interval: Some(SimDuration::from_millis(500)),
            invariant_audit: true,
            fault_plan: Some(plan),
            ..SimConfig::default()
        };
        let mobility = RandomWaypoint::new(
            8,
            Terrain::new(800.0, 300.0),
            SimDuration::from_secs(4),
            1.0,
            20.0,
            SimRng::stream(99, "mobility"),
        );
        let mut world = World::new(cfg, Box::new(mobility), Ldr::factory(LdrConfig::default()));
        world.with_cbr(TrafficConfig::paper(3));
        let sink = Arc::new(Mutex::new(MemoryTrace::default()));
        world.set_trace(Box::new(Arc::clone(&sink)));
        let m = world.run();
        let log = format!("{:?}", sink.lock().unwrap().events());
        let stable = (
            m.data_originated,
            m.data_delivered,
            m.data_tx_hops,
            m.collisions,
            m.mac_retry_failures,
            m.faults_injected,
            m.node_restarts,
            m.loop_violations,
            m.invariant_breaches,
            m.latency_sum_s.to_bits(),
        );
        (log, stable)
    };
    let (log_a, metrics_a) = run();
    let (log_b, metrics_b) = run();
    assert_eq!(metrics_a, metrics_b, "metrics must replay identically");
    assert_eq!(log_a, log_b, "the full trace log must replay byte-identically");
    assert!(log_a.contains("FaultInjected"), "the schedule must actually inject faults");
}
