//! Cross-crate integration tests: every protocol, running over the full
//! simulator stack (CSMA/CA MAC, unit-disk radio, mobility, CBR
//! traffic), delivers data in representative scenarios.

use ldr::{Ldr, LdrConfig};
use manet_baselines::{Aodv, AodvConfig, Dsr, DsrConfig, Olsr, OlsrConfig};
use manet_sim::config::SimConfig;
use manet_sim::geometry::Terrain;
use manet_sim::metrics::Metrics;
use manet_sim::mobility::{RandomWaypoint, StaticMobility};
use manet_sim::packet::NodeId;
use manet_sim::protocol::RoutingProtocol;
use manet_sim::rng::SimRng;
use manet_sim::time::{SimDuration, SimTime};
use manet_sim::traffic::TrafficConfig;
use manet_sim::world::World;

type Factory = Box<dyn FnMut(NodeId, usize) -> Box<dyn RoutingProtocol>>;

fn factories() -> Vec<(&'static str, Factory)> {
    vec![
        ("LDR", Box::new(Ldr::factory(LdrConfig::default()))),
        ("AODV", Box::new(Aodv::factory(AodvConfig::default()))),
        ("DSR", Box::new(Dsr::factory(DsrConfig::draft3()))),
        ("OLSR", Box::new(Olsr::factory(OlsrConfig::default()))),
    ]
}

fn static_chain_run(mut factory: Factory, n: usize, packets: u64, seed: u64) -> Metrics {
    let cfg = SimConfig { duration: SimDuration::from_secs(60), seed, ..SimConfig::default() };
    let mobility = StaticMobility::line(n, 200.0);
    let mut world = World::new(cfg, Box::new(mobility), |id, nn| factory(id, nn));
    for k in 0..packets {
        // Start at t = 20 s: OLSR needs hello/TC convergence first.
        world.schedule_app_packet(
            SimTime::from_millis(20_000 + 250 * k),
            NodeId(0),
            NodeId((n - 1) as u16),
            512,
        );
    }
    world.run()
}

#[test]
fn every_protocol_delivers_over_a_static_5_hop_chain() {
    for (name, factory) in factories() {
        let m = static_chain_run(factory, 6, 40, 5);
        assert_eq!(m.data_originated, 40, "{name}");
        assert!(
            m.delivery_ratio() > 0.9,
            "{name} delivered only {}/{} over a static chain",
            m.data_delivered,
            m.data_originated
        );
        assert_eq!(m.loop_violations, 0, "{name} looped on a static chain");
    }
}

#[test]
fn on_demand_protocols_pay_no_overhead_without_traffic() {
    for (name, mut factory) in factories() {
        if name == "OLSR" {
            continue; // proactive by design
        }
        let cfg =
            SimConfig { duration: SimDuration::from_secs(30), seed: 6, ..SimConfig::default() };
        let world =
            World::new(cfg, Box::new(StaticMobility::line(5, 200.0)), |id, nn| factory(id, nn));
        let m = world.run();
        assert_eq!(m.total_control_tx(), 0, "{name} sent control packets with no data to route");
    }
}

#[test]
fn olsr_maintains_routes_proactively() {
    let cfg = SimConfig { duration: SimDuration::from_secs(30), seed: 7, ..SimConfig::default() };
    let mut factory: Factory = Box::new(Olsr::factory(OlsrConfig::default()));
    let world = World::new(cfg, Box::new(StaticMobility::line(5, 200.0)), |id, nn| factory(id, nn));
    let m = world.run();
    assert!(
        m.control_tx.get(&manet_sim::packet::ControlKind::Hello).copied().unwrap_or(0) > 50,
        "OLSR must send periodic hellos"
    );
    assert!(
        m.control_tx.get(&manet_sim::packet::ControlKind::Tc).copied().unwrap_or(0) > 0,
        "a 5-node chain has MPRs, so TCs must flow"
    );
}

fn mobile_run(mut factory: Factory, flows: usize, pause: u64, seed: u64) -> Metrics {
    let cfg = SimConfig {
        duration: SimDuration::from_secs(120),
        seed,
        audit_interval: Some(SimDuration::from_secs(2)),
        ..SimConfig::default()
    };
    let mobility = RandomWaypoint::new(
        30,
        Terrain::new(1000.0, 300.0),
        SimDuration::from_secs(pause),
        1.0,
        20.0,
        SimRng::stream(seed, "mobility"),
    );
    let mut world = World::new(cfg, Box::new(mobility), |id, nn| factory(id, nn));
    world.with_cbr(TrafficConfig::paper(flows));
    world.run()
}

#[test]
fn every_protocol_survives_mobility() {
    for (name, factory) in factories() {
        let m = mobile_run(factory, 5, 30, 11);
        assert!(
            m.delivery_ratio() > 0.6,
            "{name} delivered only {:.1}% under mild mobility",
            100.0 * m.delivery_ratio()
        );
    }
}

#[test]
fn ldr_loop_free_under_churn() {
    let m = mobile_run(Box::new(Ldr::factory(LdrConfig::default())), 8, 0, 13);
    assert_eq!(m.loop_violations, 0, "Theorem 4: loop-free at every instant");
    assert!(m.delivery_ratio() > 0.6);
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let a = mobile_run(Box::new(Ldr::factory(LdrConfig::default())), 4, 60, 17);
    let b = mobile_run(Box::new(Ldr::factory(LdrConfig::default())), 4, 60, 17);
    assert_eq!(a.data_originated, b.data_originated);
    assert_eq!(a.data_delivered, b.data_delivered);
    assert_eq!(a.data_tx_hops, b.data_tx_hops);
    assert_eq!(a.total_control_tx(), b.total_control_tx());
    assert_eq!(a.collisions, b.collisions);
    assert_eq!(a.mean_own_seqno, b.mean_own_seqno);
}

#[test]
fn different_seeds_differ() {
    let a = mobile_run(Box::new(Ldr::factory(LdrConfig::default())), 4, 60, 18);
    let b = mobile_run(Box::new(Ldr::factory(LdrConfig::default())), 4, 60, 19);
    assert_ne!(
        (a.data_tx_hops, a.collisions),
        (b.data_tx_hops, b.collisions),
        "distinct seeds should explore distinct trajectories"
    );
}

#[test]
fn partitioned_network_fails_gracefully() {
    // Two clusters far apart: no physical path.
    let positions: Vec<manet_sim::geometry::Position> = (0..6)
        .map(|i| {
            let x = if i < 3 { i as f64 * 100.0 } else { 5000.0 + i as f64 * 100.0 };
            manet_sim::geometry::Position::new(x, 0.0)
        })
        .collect();
    for (name, mut factory) in factories() {
        let cfg =
            SimConfig { duration: SimDuration::from_secs(30), seed: 21, ..SimConfig::default() };
        let mut world =
            World::new(cfg, Box::new(StaticMobility::new(positions.clone())), |id, nn| {
                factory(id, nn)
            });
        world.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(5), 512);
        let m = world.run();
        assert_eq!(m.data_delivered, 0, "{name} delivered across a partition?!");
        assert_eq!(m.data_originated, 1, "{name}");
    }
}

#[test]
fn aodv_seqno_outgrows_ldr_under_churn() {
    let ldr = mobile_run(Box::new(Ldr::factory(LdrConfig::default())), 8, 0, 23);
    let aodv = mobile_run(Box::new(Aodv::factory(AodvConfig::default())), 8, 0, 23);
    assert!(
        aodv.mean_own_seqno > 2.0 * ldr.mean_own_seqno,
        "Fig. 7 shape: AODV ({:.1}) must clearly outgrow LDR ({:.1})",
        aodv.mean_own_seqno,
        ldr.mean_own_seqno
    );
}

#[test]
fn continuous_traffic_keeps_routes_alive_without_rediscovery() {
    // Soft state: data forwarding refreshes route lifetimes, so a
    // stable 40-s CBR stream over a static chain needs exactly one
    // discovery even though ACTIVE_ROUTE_TIMEOUT is 3 s.
    let cfg = SimConfig { duration: SimDuration::from_secs(45), seed: 61, ..SimConfig::default() };
    let mut world = World::new(
        cfg,
        Box::new(StaticMobility::line(4, 200.0)),
        Ldr::factory(LdrConfig::default()),
    );
    for k in 0..160u64 {
        world.schedule_app_packet(SimTime::from_millis(1000 + 250 * k), NodeId(0), NodeId(3), 512);
    }
    let m = world.run();
    assert_eq!(m.data_delivered, 160);
    assert_eq!(
        m.proto.get(&manet_sim::protocol::ProtoCounter::DiscoveryStarted).copied().unwrap_or(0),
        1,
        "route refresh must prevent re-discovery"
    );
}

#[test]
fn aodv_hello_variant_detects_breaks_without_data_failures() {
    use manet_sim::mobility::ScriptedMobility;
    // 0 - 1 - 2 chain; node 2 walks away at t = 12 s. With hellos on,
    // node 1 notices the silence and revokes the route even though no
    // data was in flight to fail at the MAC.
    let tracks = vec![
        vec![(SimTime::ZERO, manet_sim::geometry::Position::new(0.0, 0.0))],
        vec![(SimTime::ZERO, manet_sim::geometry::Position::new(200.0, 0.0))],
        vec![
            (SimTime::ZERO, manet_sim::geometry::Position::new(400.0, 0.0)),
            (SimTime::from_secs(12), manet_sim::geometry::Position::new(400.0, 0.0)),
            (SimTime::from_secs(13), manet_sim::geometry::Position::new(4000.0, 0.0)),
        ],
    ];
    let cfg = SimConfig { duration: SimDuration::from_secs(30), seed: 63, ..SimConfig::default() };
    let hello_cfg =
        AodvConfig { hello_interval: Some(SimDuration::from_secs(1)), ..AodvConfig::default() };
    let mut world =
        World::new(cfg, Box::new(ScriptedMobility::new(tracks)), Aodv::factory(hello_cfg));
    // One early packet builds the route; then silence.
    world.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(2), 512);
    let m = world.run();
    assert_eq!(m.data_delivered, 1);
    assert!(
        m.control_tx.get(&manet_sim::packet::ControlKind::Hello).copied().unwrap_or(0) > 5,
        "hellos must flow while routes are active"
    );
}
