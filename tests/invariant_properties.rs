//! Property-based integration tests: LDR's instantaneous loop freedom
//! and the simulator's conservation laws hold across randomly generated
//! scenarios (random seeds, flow counts, pause times, node counts).

use ldr::{Ldr, LdrConfig};
use manet_sim::config::SimConfig;
use manet_sim::geometry::Terrain;
use manet_sim::metrics::Metrics;
use manet_sim::mobility::RandomWaypoint;
use manet_sim::rng::SimRng;
use manet_sim::time::SimDuration;
use manet_sim::traffic::TrafficConfig;
use manet_sim::world::World;
use proptest::prelude::*;

fn ldr_run(seed: u64, nodes: usize, flows: usize, pause: u64, secs: u64) -> Metrics {
    let cfg = SimConfig {
        duration: SimDuration::from_secs(secs),
        seed,
        audit_interval: Some(SimDuration::from_millis(500)),
        ..SimConfig::default()
    };
    let mobility = RandomWaypoint::new(
        nodes,
        Terrain::new(1200.0, 300.0),
        SimDuration::from_secs(pause),
        1.0,
        20.0,
        SimRng::stream(seed, "mobility"),
    );
    let mut world = World::new(cfg, Box::new(mobility), Ldr::factory(LdrConfig::default()));
    world.with_cbr(TrafficConfig::paper(flows));
    world.run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Theorem 4, empirically: whatever the topology dynamics and
    /// load, the auditor never finds a routing loop in LDR tables.
    #[test]
    fn ldr_never_loops(
        seed in 1u64..10_000,
        nodes in 10usize..30,
        flows in 2usize..8,
        pause in prop::sample::select(vec![0u64, 20, 120]),
    ) {
        let m = ldr_run(seed, nodes, flows, pause, 45);
        prop_assert_eq!(m.loop_violations, 0);
    }

    /// Conservation: deliveries never exceed originations; every
    /// delivered packet is distinct; latency only counts delivered
    /// packets; hop-wise transmissions dominate end-to-end deliveries.
    #[test]
    fn traffic_accounting_is_conserved(
        seed in 1u64..10_000,
        flows in 2usize..6,
    ) {
        let m = ldr_run(seed, 20, flows, 60, 40);
        prop_assert!(m.data_delivered <= m.data_originated);
        prop_assert!(m.data_tx_hops >= m.data_delivered,
            "a delivery needs at least one transmission");
        if m.data_delivered == 0 {
            prop_assert_eq!(m.latency_sum_s, 0.0);
        } else {
            prop_assert!(m.mean_latency_s() > 0.0);
            prop_assert!(m.mean_latency_s() < 40.0, "latency bounded by run length");
        }
        // Routing-layer drops and deliveries cannot exceed what entered
        // the routing layer (originations plus per-hop receptions).
        let drops: u64 = m.drops.values().sum();
        prop_assert!(drops <= m.data_originated + m.data_tx_hops);
    }

    /// Determinism as a property: any (seed, load) replays exactly.
    #[test]
    fn replay_determinism(seed in 1u64..1000, flows in 2usize..5) {
        let a = ldr_run(seed, 15, flows, 30, 30);
        let b = ldr_run(seed, 15, flows, 30, 30);
        prop_assert_eq!(a.data_delivered, b.data_delivered);
        prop_assert_eq!(a.data_tx_hops, b.data_tx_hops);
        prop_assert_eq!(a.collisions, b.collisions);
        prop_assert_eq!(a.total_control_tx(), b.total_control_tx());
    }
}
