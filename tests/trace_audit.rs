//! Integration tests for the routing-decision trace layer and the
//! every-mutation invariant auditor.
//!
//! Covers the wiring end to end: link-layer events (`MacGiveUp`,
//! `Delivered`) and routing-layer events (`RreqStart`, `RouteInstall`,
//! `AdvertConsidered` with an `Infeasible` NDC verdict) reach an
//! attached sink from a real simulation, a clean LDR run passes the
//! every-mutation audit, and an injected fd-monotonicity bug produces
//! a deterministic forensic dump.

use ldr::{Ldr, LdrConfig};
use manet_sim::config::SimConfig;
use manet_sim::mobility::StaticMobility;
use manet_sim::packet::{ControlPacket, DataPacket, NodeId, Packet};
use manet_sim::protocol::{Ctx, DropReason, RouteDump, RoutingProtocol};
use manet_sim::static_routing::StaticRouting;
use manet_sim::time::{SimDuration, SimTime};
use manet_sim::trace::{InvariantSnapshot, MemoryTrace, RouteVerdict, TraceEvent};
use manet_sim::world::World;

fn cfg(duration_secs: u64, seed: u64) -> SimConfig {
    SimConfig { duration: SimDuration::from_secs(duration_secs), seed, ..SimConfig::default() }
}

#[test]
fn mac_give_up_and_delivery_reach_the_sink() {
    // Two nodes 400 m apart (out of the 275 m range): the MAC exhausts
    // its retries and the sink must hear about it.
    let shared = MemoryTrace::shared();
    let topo = StaticRouting::tables_for_line(2);
    let mut w = World::new(cfg(10, 1), Box::new(StaticMobility::line(2, 400.0)), move |id, _| {
        Box::new(StaticRouting::new(id, topo.clone()))
    });
    w.set_trace(Box::new(shared.clone()));
    w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(1), 512);
    let m = w.run();
    assert_eq!(m.data_delivered, 0);
    let tr = shared.lock().unwrap();
    let give_ups =
        tr.count(|e| matches!(e, TraceEvent::MacGiveUp { node: NodeId(0), dst: NodeId(1), .. }));
    assert_eq!(give_ups, 1, "one unicast frame, one give-up");

    // Three nodes in range: the delivery event fires exactly once.
    let shared = MemoryTrace::shared();
    let topo = StaticRouting::tables_for_line(3);
    let mut w = World::new(cfg(10, 2), Box::new(StaticMobility::line(3, 200.0)), move |id, _| {
        Box::new(StaticRouting::new(id, topo.clone()))
    });
    w.set_trace(Box::new(shared.clone()));
    w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(2), 512);
    let m = w.run();
    assert_eq!(m.data_delivered, 1);
    let tr = shared.lock().unwrap();
    let delivered = tr.count(|e| matches!(e, TraceEvent::Delivered { node: NodeId(2), .. }));
    assert_eq!(delivered, 1);
}

#[test]
fn ldr_discovery_emits_routing_layer_events() {
    // A 4-node chain, one packet from 0 to 3: the discovery must leave
    // a full routing-decision record — the origin's RREQ, installed
    // routes with their (sn, d, fd) snapshots, at least one advert
    // rejected by NDC (node 1 re-hears the origin's solicitation via
    // node 2's relay at a worse distance under the same sequence
    // number), and the reply.
    let shared = MemoryTrace::shared();
    let mut factory = Ldr::factory(LdrConfig::default());
    let mut w =
        World::new(cfg(30, 7), Box::new(StaticMobility::line(4, 200.0)), |id, n| factory(id, n));
    w.set_trace(Box::new(shared.clone()));
    w.schedule_app_packet(SimTime::from_secs(1), NodeId(0), NodeId(3), 512);
    w.run_until(SimTime::from_secs(30));
    w.finalize();
    let m = w.metrics().clone();
    assert_eq!(m.data_delivered, 1);
    // The emission counter lives on the world, not in Metrics —
    // metrics must stay equal between traced and untraced twins.
    assert!(w.trace_events() > 0, "routing emissions must be counted");

    let tr = shared.lock().unwrap();
    let rreq_starts =
        tr.count(|e| matches!(e, TraceEvent::RreqStart { node: NodeId(0), dest: NodeId(3), .. }));
    assert!(rreq_starts >= 1, "the origin must log its solicitation");

    let installs = tr.count(|e| matches!(e, TraceEvent::RouteInstall { .. }));
    assert!(installs >= 3, "reverse + forward routes install along the chain: {installs}");

    // Every install's after-snapshot satisfies fd <= d (the fd is the
    // minimum distance attained under the current sn).
    for (_, e) in tr.events() {
        if let TraceEvent::RouteInstall { after, .. } = e {
            assert!(after.fd <= after.d, "install with fd > d: {after:?}");
        }
    }

    let infeasible = tr.count(|e| {
        matches!(e, TraceEvent::AdvertConsidered { verdict: RouteVerdict::Infeasible, .. })
    });
    assert!(infeasible >= 1, "NDC must reject the worse re-advertisement");

    let rreps = tr.count(|e| matches!(e, TraceEvent::RrepSend { .. }));
    assert!(rreps >= 1, "the destination must answer");
}

#[test]
fn clean_ldr_run_passes_every_mutation_audit() {
    let mut config = cfg(20, 11);
    config.invariant_audit = true;
    let mut factory = Ldr::factory(LdrConfig::default());
    let mut w =
        World::new(config, Box::new(StaticMobility::line(5, 200.0)), |id, n| factory(id, n));
    for i in 0..10u64 {
        w.schedule_app_packet(SimTime::from_millis(1000 + i * 200), NodeId(0), NodeId(4), 512);
    }
    w.run_until(SimTime::from_secs(20));
    w.finalize();
    assert!(w.metrics().invariant_checks > 0, "audit must actually run");
    assert_eq!(w.metrics().invariant_breaches, 0, "LDR must keep fd monotone");
    assert!(w.forensic_report().is_none());
    assert!(w.metrics().data_delivered >= 9);
}

/// A deliberately broken protocol: node 0 advertises a route to node 1
/// whose feasible distance *rises* every second under a fixed sequence
/// number — exactly the regression the LDR invariants forbid.
struct BuggyFd {
    id: NodeId,
    fd: u32,
}

impl RoutingProtocol for BuggyFd {
    fn name(&self) -> &'static str {
        "BuggyFd"
    }
    fn start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(SimDuration::from_secs(1), 0);
    }
    fn handle_data_origination(&mut self, ctx: &mut Ctx, data: DataPacket) {
        ctx.drop_data(data, DropReason::NoRoute);
    }
    fn handle_data_packet(&mut self, ctx: &mut Ctx, _prev_hop: NodeId, data: DataPacket) {
        ctx.drop_data(data, DropReason::NoRoute);
    }
    fn handle_control(
        &mut self,
        _ctx: &mut Ctx,
        _prev_hop: NodeId,
        _ctrl: ControlPacket,
        _was_broadcast: bool,
    ) {
    }
    fn handle_timer(&mut self, ctx: &mut Ctx, _token: u64) {
        if self.id == NodeId(0) {
            self.fd += 1;
            let id = self.id;
            let fd = self.fd;
            ctx.trace(|| TraceEvent::RouteInstall {
                node: id,
                dest: NodeId(1),
                next: NodeId(1),
                before: None,
                after: InvariantSnapshot { sn: Some(5), d: fd, fd },
            });
        }
        ctx.set_timer(SimDuration::from_secs(1), 0);
    }
    fn handle_unicast_failure(&mut self, _ctx: &mut Ctx, _next_hop: NodeId, _packet: Packet) {}
    fn route_table_dump(&self) -> Vec<RouteDump> {
        if self.id != NodeId(0) {
            return Vec::new();
        }
        vec![RouteDump {
            dest: NodeId(1),
            next: NodeId(1),
            dist: self.fd,
            feasible_dist: Some(self.fd),
            seqno: Some(5),
            valid: true,
        }]
    }
}

#[test]
fn injected_fd_raise_produces_a_deterministic_forensic_dump() {
    let run = || {
        let mut config = cfg(10, 42);
        config.invariant_audit = true;
        let mut w = World::new(config, Box::new(StaticMobility::line(2, 100.0)), |id, _| {
            Box::new(BuggyFd { id, fd: 2 }) as Box<dyn RoutingProtocol>
        });
        w.run_until(SimTime::from_secs(5));
        w.finalize();
        assert!(w.metrics().invariant_breaches >= 1, "the bug must be caught");
        let report = w.forensic_report().expect("first breach must leave a report");
        format!("{report}")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "the forensic dump must be deterministic under a fixed seed");
    assert!(a.contains("fd-monotonicity"), "dump must name the broken invariant:\n{a}");
    assert!(a.contains("seed 42"), "dump must record the seed:\n{a}");
    assert!(a.contains("n0"), "dump must name the offending node:\n{a}");
}
