//! The paper's overhead claims (§4, Table 1), asserted as *shapes* on
//! small aggregate runs: LDR floods fewer RREQs than AODV yet harvests
//! more usable RREPs per request.

use ldr::{Ldr, LdrConfig};
use manet_baselines::{Aodv, AodvConfig};
use manet_sim::config::SimConfig;
use manet_sim::geometry::Terrain;
use manet_sim::metrics::Metrics;
use manet_sim::mobility::RandomWaypoint;
use manet_sim::packet::NodeId;
use manet_sim::protocol::RoutingProtocol;
use manet_sim::rng::SimRng;
use manet_sim::time::SimDuration;
use manet_sim::traffic::TrafficConfig;
use manet_sim::world::World;

fn run(
    mut factory: Box<dyn FnMut(NodeId, usize) -> Box<dyn RoutingProtocol>>,
    seed: u64,
) -> Metrics {
    // Table-1-like conditions: the RREQ saving comes from LDR's
    // optimal-TTL / feasible-distance machinery on *re*-discoveries, so
    // runs must be long enough for route maintenance to dominate the
    // cold start.
    let cfg = SimConfig { duration: SimDuration::from_secs(300), seed, ..SimConfig::default() };
    let mobility = RandomWaypoint::new(
        50,
        Terrain::new(1500.0, 300.0),
        SimDuration::from_secs(120),
        1.0,
        20.0,
        SimRng::stream(seed, "mobility"),
    );
    let mut world = World::new(cfg, Box::new(mobility), |id, n| factory(id, n));
    world.with_cbr(TrafficConfig::paper(10));
    world.run()
}

fn aggregate(proto: &str) -> (u64, u64, f64, f64) {
    let mut rreq_tx = 0;
    let mut rreq_init = 0;
    let mut usable = 0.0;
    let mut delivered = 0.0;
    for seed in [101u64, 202] {
        let m = match proto {
            "ldr" => run(Box::new(Ldr::factory(LdrConfig::default())), seed),
            _ => run(Box::new(Aodv::factory(AodvConfig::default())), seed),
        };
        rreq_tx += m.rreq_tx();
        rreq_init +=
            m.control_init.get(&manet_sim::packet::ControlKind::Rreq).copied().unwrap_or(0);
        usable +=
            m.proto.get(&manet_sim::protocol::ProtoCounter::RrepUsableRecv).copied().unwrap_or(0)
                as f64;
        delivered += m.data_delivered as f64;
    }
    (rreq_tx, rreq_init, usable, delivered)
}

#[test]
fn ldr_floods_less_and_harvests_more_usable_replies_than_aodv() {
    let (ldr_tx, ldr_init, ldr_usable, ldr_del) = aggregate("ldr");
    let (aodv_tx, aodv_init, aodv_usable, aodv_del) = aggregate("aodv");

    assert!(ldr_tx < aodv_tx, "LDR must transmit fewer broadcast RREQs: {ldr_tx} !< {aodv_tx}");
    // (The paper's claim is about transmissions — flood volume — not
    // initiations: LDR's optimal-TTL rings are smaller even when its
    // discovery *count* is similar, so only the tx comparison is
    // asserted. `ldr_init` stays in the aggregate for the yield ratio.)
    let _ = aodv_init;
    let ldr_yield = ldr_usable / ldr_init.max(1) as f64;
    let aodv_yield = aodv_usable / aodv_init.max(1) as f64;
    assert!(
        ldr_yield > aodv_yield,
        "LDR's usable-RREP yield per RREQ must exceed AODV's: {ldr_yield:.2} !> {aodv_yield:.2}"
    );
    // Both must actually carry the load.
    assert!(ldr_del > 0.9 * aodv_del && aodv_del > 0.9 * ldr_del, "deliveries comparable");
}
