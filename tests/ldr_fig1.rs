//! Staged reproduction of the paper's Fig. 1 narrative (§2.3): route
//! discovery over a chain, feasible-distance bookkeeping, a link break,
//! and the T-bit / destination-reset machinery — driven through the
//! full simulator.

use ldr::{Ldr, LdrConfig};
use manet_sim::config::SimConfig;
use manet_sim::geometry::Position;
use manet_sim::mobility::ScriptedMobility;
use manet_sim::packet::NodeId;
use manet_sim::time::{SimDuration, SimTime};
use manet_sim::world::World;

const E: u16 = 0;
const B: u16 = 1;
const C: u16 = 2;
const D: u16 = 3;
const T: u16 = 4;

fn keyframe(x: f64) -> Position {
    Position::new(x, 0.0)
}

/// E – B – C – D – T chain, 200 m apart (275 m radio range, so only
/// adjacent nodes hear each other).
fn chain_world(tracks: Vec<Vec<(SimTime, Position)>>, seed: u64) -> World {
    let cfg = SimConfig {
        duration: SimDuration::from_secs(40),
        seed,
        audit_interval: Some(SimDuration::from_millis(200)),
        ..SimConfig::default()
    };
    World::new(cfg, Box::new(ScriptedMobility::new(tracks)), Ldr::factory(LdrConfig::default()))
}

fn static_tracks() -> Vec<Vec<(SimTime, Position)>> {
    (0..5).map(|i| vec![(SimTime::ZERO, keyframe(i as f64 * 200.0))]).collect()
}

fn route_of(world: &World, node: u16, dest: u16) -> Option<(u16, u32, u32, bool)> {
    world
        .protocol(NodeId(node))
        .route_table_dump()
        .into_iter()
        .find(|r| r.dest == NodeId(dest))
        .map(|r| (r.next.0, r.dist, r.feasible_dist.unwrap_or(0), r.valid))
}

#[test]
fn discovery_installs_ordered_feasible_distances() {
    let mut world = chain_world(static_tracks(), 31);
    world.schedule_app_packet(SimTime::from_secs(1), NodeId(E), NodeId(T), 512);
    world.run_until(SimTime::from_secs(5));
    world.finalize();

    // Theorem 2's ordering criterion along the successor path E→B→C→D→T:
    // feasible distances strictly decrease towards the destination.
    let (next_e, d_e, fd_e, ok_e) = route_of(&world, E, T).expect("E routes to T");
    let (_, _, fd_b, _) = route_of(&world, B, T).expect("B routes to T");
    let (_, _, fd_c, _) = route_of(&world, C, T).expect("C routes to T");
    let (_, _, fd_d, _) = route_of(&world, D, T).expect("D routes to T");
    assert!(ok_e);
    assert_eq!(next_e, B);
    assert_eq!((d_e, fd_e), (4, 4));
    assert!(
        fd_e > fd_b && fd_b > fd_c && fd_c > fd_d,
        "ordering criteria: {fd_e} > {fd_b} > {fd_c} > {fd_d}"
    );
    assert_eq!(world.metrics().data_delivered, 1);
    assert_eq!(world.metrics().loop_violations, 0);
}

#[test]
fn reverse_routes_install_from_the_rreq_advertisement() {
    let mut world = chain_world(static_tracks(), 32);
    world.schedule_app_packet(SimTime::from_secs(1), NodeId(E), NodeId(T), 512);
    world.run_until(SimTime::from_secs(5));
    world.finalize();
    // Every relay (and the destination) learned a route back to E.
    for node in [B, C, D, T] {
        let (_, dist, _, _) = route_of(&world, node, E).expect("reverse route to E");
        assert_eq!(dist, u32::from(node), "hop count back to E");
    }
}

#[test]
fn break_triggers_rerr_rediscovery_and_recovery() {
    // T drifts out of D's range at t = 10 s and stays gone; but a
    // second leg exists: T remains reachable via a longer detour? No —
    // chain only. So E's traffic fails, RERRs flow, and when T returns
    // at t = 20 s, a re-discovery rebuilds the route and delivery
    // resumes.
    let mut tracks = static_tracks();
    tracks[T as usize] = vec![
        (SimTime::ZERO, keyframe(800.0)),
        (SimTime::from_secs(10), keyframe(800.0)),
        (SimTime::from_secs(11), keyframe(1200.0)), // far out of range
        (SimTime::from_secs(19), keyframe(1200.0)),
        (SimTime::from_secs(20), keyframe(800.0)), // back
    ];
    let mut world = chain_world(tracks, 33);
    for k in 0..120u64 {
        world.schedule_app_packet(SimTime::from_millis(1000 + 250 * k), NodeId(E), NodeId(T), 512);
    }
    let m = world.run();
    assert!(m.data_delivered > 80, "delivery resumed after the break: {}", m.data_delivered);
    assert!(m.data_delivered < 120, "packets during the outage are genuinely lost");
    assert!(
        m.control_tx.get(&manet_sim::packet::ControlKind::Rerr).copied().unwrap_or(0) > 0,
        "the break must be reported upstream"
    );
    assert_eq!(m.loop_violations, 0);
}

#[test]
fn t_bit_reset_raises_destination_seqno_when_invariants_block_replies() {
    // Force the Fig. 1 endgame: E holds a tight feasible distance to T
    // (fd = 2 via a shortcut), the shortcut dies, and the only
    // remaining path is 3 hops — longer than every invariant allows, so
    // FDC forces the T bit and the destination must reset (increment
    // its own sequence number) before anyone can answer.
    //
    // Geometry (radio range 275 m):
    //   E(0,0) — S(200,150) — T(430,0)     2-hop shortcut, S leaves at t=9 s
    //   E(0,0) — M1(150,0) — M2(300,0) — T(430,0)   permanent 3-hop backbone
    // M1–T is 280 m: out of range, so no 2-hop path survives S.
    let tracks = vec![
        // E
        vec![(SimTime::ZERO, keyframe(0.0))],
        // S: shortcut E–S–T, leaves for good at t = 8 s.
        vec![
            (SimTime::ZERO, Position::new(200.0, 150.0)),
            (SimTime::from_secs(8), Position::new(200.0, 150.0)),
            (SimTime::from_secs(9), Position::new(200.0, 4000.0)),
        ],
        // M1, M2: a permanent 3-hop backbone E–M1–M2–T.
        vec![(SimTime::ZERO, keyframe(150.0))],
        vec![(SimTime::ZERO, keyframe(300.0))],
        // T: 430 m from E, so M1 (150 m) is 280 m away — out of range;
        // after S leaves, only the 3-hop backbone remains.
        vec![(SimTime::ZERO, keyframe(430.0))],
    ];
    let cfg = SimConfig {
        duration: SimDuration::from_secs(30),
        seed: 34,
        audit_interval: Some(SimDuration::from_millis(200)),
        ..SimConfig::default()
    };
    let mut world = World::new(
        cfg,
        Box::new(ScriptedMobility::new(tracks)),
        Ldr::factory(LdrConfig::default()),
    );
    let t_node = NodeId(4);
    for k in 0..100u64 {
        world.schedule_app_packet(SimTime::from_millis(1000 + 250 * k), NodeId(0), t_node, 512);
    }
    world.run_until(SimTime::from_secs(7));
    let sn_before = world.protocol(t_node).own_seqno_value().unwrap();
    // E should have found the 2-hop route through S: fd_E = 2.
    let (_, d_e, fd_e, _) = {
        let r = world
            .protocol(NodeId(0))
            .route_table_dump()
            .into_iter()
            .find(|r| r.dest == t_node)
            .expect("route to T");
        (r.next.0, r.dist, r.feasible_dist.unwrap_or(99), r.valid)
    };
    assert_eq!(d_e, 2, "shortcut route in use");
    assert_eq!(fd_e, 2);

    world.run_until(SimTime::from_secs(30));
    world.finalize();
    let sn_after = world.protocol(t_node).own_seqno_value().unwrap();
    let m = world.metrics();
    assert!(
        sn_after > sn_before,
        "re-routing onto the longer path requires a destination reset \
         (T bit): sn {sn_before} -> {sn_after}"
    );
    assert!(m.data_delivered > 70, "delivery resumed on the 3-hop path: {}", m.data_delivered);
    assert_eq!(m.loop_violations, 0, "loop-free through the reset");
}
