//! Lemmas 3–5 of the paper, empirically: simultaneous route
//! calculations — by nodes on and off each other's solicitation paths,
//! for the same and different destinations — all terminate with
//! feasible advertisements and never interfere with each other's
//! engagement state.

use ldr::{Ldr, LdrConfig};
use manet_sim::config::SimConfig;
use manet_sim::mobility::StaticMobility;
use manet_sim::packet::NodeId;
use manet_sim::time::{SimDuration, SimTime};
use manet_sim::world::World;

/// A 9-node grid-ish mesh (3 × 3, 200 m spacing) where several sources
/// discover the same destination at the same instant.
fn mesh_world(seed: u64) -> World {
    let mut positions = Vec::new();
    for r in 0..3 {
        for c in 0..3 {
            positions.push(manet_sim::geometry::Position::new(c as f64 * 200.0, r as f64 * 200.0));
        }
    }
    let cfg = SimConfig {
        duration: SimDuration::from_secs(30),
        seed,
        audit_interval: Some(SimDuration::from_millis(250)),
        ..SimConfig::default()
    };
    World::new(cfg, Box::new(StaticMobility::new(positions)), Ldr::factory(LdrConfig::default()))
}

#[test]
fn simultaneous_discoveries_for_the_same_destination_all_succeed() {
    let mut world = mesh_world(41);
    // Nodes 0, 2 and 6 (three corners) all want node 8 (the far
    // corner) at exactly t = 1 s — three concurrent computations for
    // one destination (Lemma 4's setting).
    for src in [0u16, 2, 6] {
        for k in 0..40u64 {
            world.schedule_app_packet(
                SimTime::from_millis(1000 + 250 * k),
                NodeId(src),
                NodeId(8),
                512,
            );
        }
    }
    let m = world.run();
    assert_eq!(m.data_originated, 120);
    assert!(
        m.delivery_ratio() > 0.95,
        "all three computations must converge: {:.2}",
        m.delivery_ratio()
    );
    assert_eq!(m.loop_violations, 0);
    assert_eq!(
        m.proto.get(&manet_sim::protocol::ProtoCounter::DiscoveryFailed).copied().unwrap_or(0),
        0,
        "no computation may starve"
    );
}

#[test]
fn crossing_discoveries_for_different_destinations_do_not_interfere() {
    let mut world = mesh_world(43);
    // Two flows crossing through the centre in opposite directions,
    // started at the same instant: 0 -> 8 and 8 -> 0, plus 2 -> 6.
    let pairs = [(0u16, 8u16), (8, 0), (2, 6)];
    for (src, dst) in pairs {
        for k in 0..40u64 {
            world.schedule_app_packet(
                SimTime::from_millis(1000 + 250 * k),
                NodeId(src),
                NodeId(dst),
                512,
            );
        }
    }
    let m = world.run();
    assert!(
        m.delivery_ratio() > 0.95,
        "crossing computations must not break each other: {:.2}",
        m.delivery_ratio()
    );
    assert_eq!(m.loop_violations, 0);
}

#[test]
fn relay_can_go_active_for_a_destination_while_engaged_for_it() {
    // Lemma 5's setting: node 4 (the centre) relays 0's computation for
    // 8, and moments later originates its own traffic to 8 — becoming
    // active for a destination it is engaged for.
    let mut world = mesh_world(47);
    for k in 0..40u64 {
        world.schedule_app_packet(SimTime::from_millis(1000 + 250 * k), NodeId(0), NodeId(8), 512);
        world.schedule_app_packet(SimTime::from_millis(1005 + 250 * k), NodeId(4), NodeId(8), 512);
    }
    let m = world.run();
    assert!(m.delivery_ratio() > 0.95, "{:.2}", m.delivery_ratio());
    assert_eq!(m.loop_violations, 0);
}
