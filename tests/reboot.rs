//! Node crash/restart behaviour — §3's claim that LDR's
//! clock-plus-counter sequence numbers avoid AODV's *reboot-hold*
//! procedure: a restarted node may participate immediately, because its
//! fresh clock stamp (epoch) dominates every number it issued before
//! the crash, so stale state elsewhere can never suppress or mis-order
//! its new advertisements.

use ldr::{Ldr, LdrConfig};
use manet_sim::config::SimConfig;
use manet_sim::mobility::StaticMobility;
use manet_sim::packet::NodeId;
use manet_sim::time::{SimDuration, SimTime};
use manet_sim::world::World;

fn chain_world(n: usize, seed: u64, secs: u64) -> World {
    let cfg = SimConfig {
        duration: SimDuration::from_secs(secs),
        seed,
        audit_interval: Some(SimDuration::from_millis(500)),
        ..SimConfig::default()
    };
    World::new(cfg, Box::new(StaticMobility::line(n, 200.0)), Ldr::factory(LdrConfig::default()))
}

#[test]
fn intermediate_reboot_loses_routes_but_traffic_recovers() {
    let mut world = chain_world(4, 51, 40);
    for k in 0..120u64 {
        world.schedule_app_packet(SimTime::from_millis(1000 + 250 * k), NodeId(0), NodeId(3), 512);
    }
    // The middle relay crashes mid-stream.
    world.schedule_reboot(SimTime::from_secs(10), NodeId(1));
    let m = world.run();
    assert!(
        m.data_delivered > 100,
        "traffic must recover after a relay restart: {}",
        m.data_delivered
    );
    assert!(m.data_delivered < 120, "packets in flight at the crash are lost");
    assert_eq!(m.loop_violations, 0);
}

#[test]
fn rebooted_destination_participates_immediately_no_hold() {
    let mut world = chain_world(4, 53, 40);
    for k in 0..120u64 {
        world.schedule_app_packet(SimTime::from_millis(1000 + 250 * k), NodeId(0), NodeId(3), 512);
    }
    // The destination crashes, then the path's relay crashes moments
    // later, wiping the network's usable routes — the subsequent
    // re-discovery must be answered by the *rebooted* destination with
    // its fresh-epoch number, and accepted everywhere despite the
    // tight feasible-distance history the old epoch left behind.
    world.schedule_reboot(SimTime::from_secs(10), NodeId(3));
    world.schedule_reboot(SimTime::from_millis(10_500), NodeId(2));
    world.run_until(SimTime::from_secs(40));
    world.finalize();
    let m = world.metrics();
    assert!(
        m.data_delivered > 100,
        "no reboot-hold: the fresh epoch answers immediately: {}",
        m.data_delivered
    );
    assert_eq!(m.loop_violations, 0, "epoch jumps must stay loop-free");
    // The destination's number is now in epoch 2: its scalar value
    // dominates anything from epoch 1.
    let sn = world.protocol(NodeId(3)).own_seqno_value().expect("LDR reports its number");
    assert!(sn >= 2f64.powi(32), "fresh clock stamp: got {sn}");
}

#[test]
fn reboot_mid_discovery_is_survivable() {
    // The destination reboots while a discovery for it is in flight;
    // the origin's retry must still converge.
    let mut world = chain_world(4, 57, 30);
    for k in 0..80u64 {
        world.schedule_app_packet(SimTime::from_millis(1000 + 250 * k), NodeId(0), NodeId(3), 512);
    }
    // Crash the destination a hair after the first RREQ goes out.
    world.schedule_reboot(SimTime::from_millis(1002), NodeId(3));
    let m = world.run();
    assert!(m.data_delivered > 60, "{}", m.data_delivered);
    assert_eq!(m.loop_violations, 0);
}
